"""Checkpoint/resume support for pipeline runs.

After every completed stage the runner serialises the whole run state — the
resolved spec, the artifact store, the report, the per-stage execution
records and the input data — into one pickle under the checkpoint directory.
A re-run with ``resume=True`` (or ``python -m repro.cli resume``) loads that
state, verifies the spec still matches, and skips every completed stage.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from repro.exceptions import PipelineError

STATE_FILE = "pipeline_state.pkl"
MANIFEST_FILE = "pipeline_manifest.json"
CHECKPOINT_VERSION = 1


class PipelineCheckpoint:
    """One checkpoint directory: an atomic pickle plus a readable manifest."""

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.directory = Path(path)

    @property
    def state_path(self) -> Path:
        return self.directory / STATE_FILE

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_FILE

    def exists(self) -> bool:
        """True when a state file is present."""
        return self.state_path.is_file()

    # ------------------------------------------------------------------ save
    def save(self, state: dict[str, Any]) -> None:
        """Atomically persist ``state`` (tmp file + rename).

        A crash mid-save leaves the previous checkpoint intact, so a resumed
        run can only ever lose the latest stage, never the whole run.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        state = dict(state)
        state["version"] = CHECKPOINT_VERSION
        descriptor, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=STATE_FILE, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self.state_path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        manifest = {
            "version": CHECKPOINT_VERSION,
            "completed": list(state.get("completed", [])),
            "stages": [entry.get("stage") for entry in state.get("spec", {}).get("stages", [])],
            "artifacts": state.get("artifact_manifest", {}),
        }
        self.manifest_path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")

    # ------------------------------------------------------------------ load
    def load(self) -> dict[str, Any]:
        """Load and version-check the persisted run state."""
        if not self.exists():
            raise PipelineError(f"no checkpoint found at {self.state_path}")
        with self.state_path.open("rb") as handle:
            state = pickle.load(handle)
        version = state.get("version")
        if version != CHECKPOINT_VERSION:
            raise PipelineError(
                f"checkpoint version {version!r} is not supported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return state
