"""Checkpoint/resume support for pipeline runs.

After every completed stage the runner serialises the whole run state — the
resolved spec, the artifact store, the report, the per-stage execution
records and the input data — into one pickle under the checkpoint directory.
A re-run with ``resume=True`` (or ``python -m repro.cli resume``) loads that
state, verifies the spec still matches, and skips every completed stage.

Integrity: the manifest records a SHA-256 checksum of the state pickle, and
every save first rotates the previous (verified-at-write-time) state into a
backup slot.  :meth:`PipelineCheckpoint.load` verifies the checksum before
unpickling; a torn or corrupt state file is detected and the load falls back
to the backup — one stage behind, so a resume restarts from the last
verified stage instead of unpickling garbage.  Only when both copies fail
verification does the load raise.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from repro.exceptions import PipelineError

STATE_FILE = "pipeline_state.pkl"
BACKUP_FILE = "pipeline_state.prev.pkl"
MANIFEST_FILE = "pipeline_manifest.json"
CHECKPOINT_VERSION = 1


def _checksum(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class PipelineCheckpoint:
    """One checkpoint directory: an atomic pickle plus a readable manifest."""

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.directory = Path(path)

    @property
    def state_path(self) -> Path:
        return self.directory / STATE_FILE

    @property
    def backup_path(self) -> Path:
        return self.directory / BACKUP_FILE

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_FILE

    def exists(self) -> bool:
        """True when a state file is present."""
        return self.state_path.is_file()

    # ------------------------------------------------------------------ save
    def save(self, state: dict[str, Any]) -> None:
        """Atomically persist ``state`` (tmp file + rename) with a checksum.

        A crash mid-save leaves the previous checkpoint intact, so a resumed
        run can only ever lose the latest stage, never the whole run.  The
        previous state file is rotated into the backup slot first, so even a
        state file corrupted *after* a successful save (torn write on a dying
        disk, truncation) still leaves a verified copy one stage behind.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        state = dict(state)
        state["version"] = CHECKPOINT_VERSION
        data = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        digest = _checksum(data)
        backup_digest: str | None = None
        if self.state_path.is_file():
            try:
                backup_digest = _checksum(self.state_path.read_bytes())
                os.replace(self.state_path, self.backup_path)
            except OSError:  # pragma: no cover - unreadable previous state
                backup_digest = None
        self._write_atomic(self.state_path, data)
        manifest = {
            "version": CHECKPOINT_VERSION,
            "checksum": digest,
            "backup_checksum": backup_digest,
            "completed": list(state.get("completed", [])),
            "stages": [entry.get("stage") for entry in state.get("spec", {}).get("stages", [])],
            "artifacts": state.get("artifact_manifest", {}),
        }
        self._write_atomic(
            self.manifest_path, json.dumps(manifest, indent=2).encode("utf-8")
        )

    def _write_atomic(self, path: Path, data: bytes) -> None:
        descriptor, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    # ------------------------------------------------------------------ load
    def load(self) -> dict[str, Any]:
        """Load, checksum-verify and version-check the persisted run state.

        Falls back to the rotated backup (one completed stage behind) when
        the primary state file fails verification or unpickling; raises
        :class:`~repro.exceptions.PipelineError` when neither copy verifies.
        """
        if not self.exists():
            raise PipelineError(f"no checkpoint found at {self.state_path}")
        checksums = self._manifest_checksums()
        primary_error: Exception | None = None
        try:
            state = self._load_verified(self.state_path, checksums.get("checksum"))
        except PipelineError as error:
            primary_error = error
            if not self.backup_path.is_file():
                raise PipelineError(
                    f"checkpoint state at {self.state_path} is corrupt and no "
                    f"backup exists: {error}"
                ) from error
            try:
                state = self._load_verified(
                    self.backup_path, checksums.get("backup_checksum")
                )
            except PipelineError as backup_error:
                raise PipelineError(
                    f"checkpoint state at {self.state_path} is corrupt and the "
                    f"backup failed verification too "
                    f"(state: {primary_error}; backup: {backup_error})"
                ) from backup_error
        version = state.get("version")
        if version != CHECKPOINT_VERSION:
            raise PipelineError(
                f"checkpoint version {version!r} is not supported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return state

    def _manifest_checksums(self) -> dict[str, str]:
        """Recorded checksums, if the manifest is present and readable.

        Checkpoints written before checksums existed (or with a manifest
        lost separately) degrade to unpickle-guarded loads — absence of a
        recorded checksum is not an integrity failure.
        """
        try:
            manifest = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(manifest, dict):  # pragma: no cover - foreign file
            return {}
        checksums: dict[str, str] = {}
        for key in ("checksum", "backup_checksum"):
            value = manifest.get(key)
            if isinstance(value, str):
                checksums[key] = value
        return checksums

    def _load_verified(self, path: Path, expected: str | None) -> dict[str, Any]:
        try:
            data = path.read_bytes()
        except OSError as error:
            raise PipelineError(f"cannot read checkpoint state {path}: {error}") from error
        if expected is not None and _checksum(data) != expected:
            raise PipelineError(
                f"checkpoint state {path} does not match its recorded checksum "
                f"(torn or corrupt write)"
            )
        try:
            state = pickle.loads(data)
        except Exception as error:
            raise PipelineError(
                f"checkpoint state {path} failed to unpickle: {error!r}"
            ) from error
        if not isinstance(state, dict):
            raise PipelineError(
                f"checkpoint state {path} holds {type(state).__name__}, expected dict"
            )
        return state
