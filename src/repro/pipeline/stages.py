"""Stage adapters over every existing layer of the library.

Each class wraps one black-box module of the paper's architecture (blocking,
meta-blocking, matching, clustering, evaluation…) behind the typed
:class:`~repro.pipeline.stage.Stage` protocol and registers itself in the
string-keyed registry, so any of them can be placed in a declarative spec.

The metric dictionaries recorded here are exactly the ones the legacy
``Blocker``/``SparkER`` facade recorded, which is what lets the facade be a
thin wrapper over the canonical spec with bit-for-bit identical reports.
"""

from __future__ import annotations

from itertools import islice
from typing import TYPE_CHECKING, Any

from repro.blocking.filtering import BlockFiltering
from repro.blocking.loose_schema_blocking import LooseSchemaTokenBlocking
from repro.blocking.purging import BlockPurging
from repro.blocking.stats import block_stage_metrics, candidate_pair_stats
from repro.blocking.token_blocking import TokenBlocking
from repro.core.config import ClustererConfig, MatcherConfig
from repro.core.entity_clusterer import EntityClusterer
from repro.core.entity_matcher import EntityMatcher
from repro.evaluation.metrics import clustering_metrics, pair_metrics
from repro.exceptions import EvaluationError, PipelineValidationError
from repro.looseschema.attribute_partitioning import (
    AttributePartitioner,
    loose_schema_metrics,
)
from repro.looseschema.entropy import EntropyExtractor
from repro.looseschema.lsh import AttributeLSH
from repro.metablocking.backends import resolve_backend_name, resolve_buffer_backend
from repro.metablocking.parallel import make_meta_blocker
from repro.metablocking.progressive import (
    ProgressiveNodeScheduling,
    ProgressiveSortedComparisons,
)
from repro.pipeline import artifacts as kinds
from repro.pipeline.registry import register_stage
from repro.pipeline.stage import Stage, _port

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.runner import PipelineContext


def _record_block_stage(context: "PipelineContext", label: str, blocks: Any) -> None:
    """Record the per-stage block statistics, with quality when GT is known.

    The metric dict comes from the same helper the legacy ``Blocker`` uses,
    so reports stay identical across the facade and the stage graph.
    """
    context.record(
        label,
        block_stage_metrics(
            blocks, context.ground_truth, max_comparisons=context.max_comparisons
        ),
    )


@register_stage
class LooseSchemaStage(Stage):
    """Loose-schema generation: LSH attribute partitioning + cluster entropy.

    When a ``partitioning`` artifact is already in the store (supervised mode)
    it is reused and only the entropies are extracted, exactly like the
    legacy facade with a user-supplied partitioning.
    """

    kind = "loose_schema"
    inputs = (
        _port("profiles", kinds.PROFILES),
        _port("partitioning", kinds.PARTITIONING, required=False),
    )
    outputs = (
        _port("partitioning", kinds.PARTITIONING),
        _port("cluster_entropies", kinds.CLUSTER_ENTROPIES),
    )

    def __init__(
        self,
        threshold: float = 0.3,
        num_perm: int = 128,
        num_bands: int = 32,
        lsh_seed: int = 5,
    ) -> None:
        super().__init__()
        self.threshold = threshold
        self.num_perm = num_perm
        self.num_bands = num_bands
        self.lsh_seed = lsh_seed

    def run(self, context: "PipelineContext", *, profiles, partitioning=None):
        if partitioning is None:
            partitioner = AttributePartitioner(
                threshold=self.threshold,
                lsh=AttributeLSH(
                    num_perm=self.num_perm, num_bands=self.num_bands, seed=self.lsh_seed
                ),
            )
            partitioning = partitioner.partition(profiles)
        entropies = EntropyExtractor().extract(profiles, partitioning)
        context.record(self.label, loose_schema_metrics(partitioning, entropies))
        return {"partitioning": partitioning, "cluster_entropies": entropies}


@register_stage
class TokenBlockingStage(Stage):
    """Token blocking: schema-agnostic, or loose-schema (BLAST) when a
    partitioning artifact is wired in."""

    kind = "token_blocking"
    inputs = (
        _port("profiles", kinds.PROFILES),
        _port("partitioning", kinds.PARTITIONING, required=False),
        _port("cluster_entropies", kinds.CLUSTER_ENTROPIES, required=False),
    )
    outputs = (_port("blocks", kinds.BLOCKS),)

    def __init__(
        self,
        min_token_length: int = 1,
        remove_stopwords: bool = False,
        use_entropy: bool = True,
    ) -> None:
        super().__init__()
        self.min_token_length = min_token_length
        self.remove_stopwords = remove_stopwords
        self.use_entropy = use_entropy

    def run(
        self, context: "PipelineContext", *, profiles, partitioning=None, cluster_entropies=None
    ):
        if partitioning is not None:
            strategy = LooseSchemaTokenBlocking(
                partitioning,
                cluster_entropies=cluster_entropies if self.use_entropy else None,
                min_token_length=self.min_token_length,
                remove_stopwords=self.remove_stopwords,
                engine=context.engine,
            )
        else:
            strategy = TokenBlocking(
                min_token_length=self.min_token_length,
                remove_stopwords=self.remove_stopwords,
                engine=context.engine,
            )
        blocks = strategy.block(profiles)
        _record_block_stage(context, self.label, blocks)
        return {"blocks": blocks}


@register_stage
class BlockPurgingStage(Stage):
    """Block purging: drop blocks covering too large a profile fraction."""

    kind = "block_purging"
    inputs = (_port("blocks", kinds.BLOCKS), _port("profiles", kinds.PROFILES))
    outputs = (_port("blocks", kinds.BLOCKS),)

    def __init__(self, max_profile_fraction: float = 0.5) -> None:
        super().__init__()
        self.max_profile_fraction = max_profile_fraction

    def run(self, context: "PipelineContext", *, blocks, profiles):
        purging = BlockPurging(max_profile_fraction=self.max_profile_fraction)
        purged = purging.purge(blocks, len(profiles))
        _record_block_stage(context, self.label, purged)
        return {"blocks": purged}


@register_stage
class BlockFilteringStage(Stage):
    """Block filtering: keep the smallest fraction of each profile's blocks."""

    kind = "block_filtering"
    inputs = (_port("blocks", kinds.BLOCKS),)
    outputs = (_port("blocks", kinds.BLOCKS),)

    def __init__(self, ratio: float = 0.8) -> None:
        super().__init__()
        self.ratio = ratio

    def run(self, context: "PipelineContext", *, blocks):
        filtered = BlockFiltering(ratio=self.ratio).filter(blocks)
        _record_block_stage(context, self.label, filtered)
        return {"blocks": filtered}


@register_stage
class MetaBlockingStage(Stage):
    """Meta-blocking: weight the blocking graph, prune, emit candidate pairs.

    Runs the broadcast-join :class:`ParallelMetaBlocker` when the pipeline has
    an engine, the sequential reference implementation otherwise — both are
    bit-for-bit equivalent.
    """

    kind = "meta_blocking"
    inputs = (_port("blocks", kinds.BLOCKS),)
    outputs = (
        _port("candidate_pairs", kinds.CANDIDATE_PAIRS),
        _port("meta_blocking", kinds.META_BLOCKING),
    )

    def __init__(
        self,
        weighting: str = "cbs",
        pruning: str = "wnp",
        use_entropy: bool = False,
    ) -> None:
        super().__init__()
        self.weighting = weighting
        self.pruning = pruning
        self.use_entropy = use_entropy

    def run(self, context: "PipelineContext", *, blocks):
        meta_blocker = make_meta_blocker(
            context.engine,
            weighting=self.weighting,
            pruning=self.pruning,
            use_entropy=self.use_entropy,
            kernel_backend=context.kernel_backend,
            buffer_backend=context.buffer_backend,
            tmp_dir=context.tmp_dir,
        )
        result = meta_blocker.run(blocks)
        context.annotate(
            self.label,
            kernel_backend=resolve_backend_name(context.kernel_backend),
            buffer_backend=resolve_buffer_backend(context.buffer_backend),
        )
        metrics: dict[str, object] = dict(result.as_dict())
        if context.ground_truth is not None:
            metrics.update(
                candidate_pair_stats(
                    result.candidate_pairs,
                    context.ground_truth,
                    max_comparisons=context.max_comparisons,
                )
            )
        context.record(self.label, metrics)
        return {"candidate_pairs": result.candidate_pairs, "meta_blocking": result}


@register_stage
class BlockComparisonsStage(Stage):
    """Candidate pairs straight from the blocks (meta-blocking disabled)."""

    kind = "block_comparisons"
    inputs = (_port("blocks", kinds.BLOCKS),)
    outputs = (_port("candidate_pairs", kinds.CANDIDATE_PAIRS),)

    def run(self, context: "PipelineContext", *, blocks):
        pairs = blocks.distinct_comparisons()
        metrics: dict[str, object] = {"candidate_pairs": len(pairs)}
        if context.ground_truth is not None:
            metrics.update(
                candidate_pair_stats(
                    pairs, context.ground_truth, max_comparisons=context.max_comparisons
                )
            )
        context.record(self.label, metrics)
        return {"candidate_pairs": pairs}


@register_stage
class ProgressiveMetaBlockingStage(Stage):
    """Progressive meta-blocking: emit the best comparisons under a budget.

    ``strategy`` selects Progressive Global Sorting (``"global"``) or node
    scheduling (``"node"``); ``budget`` caps the number of comparisons kept
    (``None`` keeps them all, in rank order).
    """

    kind = "progressive_meta_blocking"
    inputs = (_port("blocks", kinds.BLOCKS),)
    outputs = (_port("candidate_pairs", kinds.CANDIDATE_PAIRS),)

    def __init__(
        self,
        weighting: str = "cbs",
        strategy: str = "global",
        budget: int | None = None,
    ) -> None:
        super().__init__()
        if strategy not in ("global", "node"):
            raise PipelineValidationError(
                f"progressive strategy must be 'global' or 'node', got {strategy!r}"
            )
        self.weighting = weighting
        self.strategy = strategy
        self.budget = budget

    def run(self, context: "PipelineContext", *, blocks):
        if self.strategy == "global":
            progressive = ProgressiveSortedComparisons(
                weighting=self.weighting,
                kernel_backend=context.kernel_backend,
                buffer_backend=context.buffer_backend,
            )
        else:
            progressive = ProgressiveNodeScheduling(
                weighting=self.weighting,
                kernel_backend=context.kernel_backend,
                buffer_backend=context.buffer_backend,
            )
        context.annotate(
            self.label,
            kernel_backend=resolve_backend_name(context.kernel_backend),
            buffer_backend=resolve_buffer_backend(context.buffer_backend),
        )
        stream = progressive.stream(blocks)
        if self.budget is not None:
            stream = islice(stream, self.budget)
        pairs = set(stream)
        metrics: dict[str, object] = {
            "candidate_pairs": len(pairs),
            "budget": self.budget,
            "strategy": self.strategy,
        }
        if context.ground_truth is not None:
            metrics.update(
                candidate_pair_stats(
                    pairs, context.ground_truth, max_comparisons=context.max_comparisons
                )
            )
        context.record(self.label, metrics)
        return {"candidate_pairs": pairs}


@register_stage
class MatchingStage(Stage):
    """Entity matching: label candidate pairs, produce the similarity graph.

    Rule lists, labeled training pairs and fully custom matcher instances are
    not JSON-serialisable, so they travel through the pipeline *extras*
    (``Pipeline.run(..., extras={"rules": [...]})``).
    """

    kind = "matching"
    inputs = (
        _port("profiles", kinds.PROFILES),
        _port("candidate_pairs", kinds.CANDIDATE_PAIRS),
        _port("partitioning", kinds.PARTITIONING, required=False),
    )
    outputs = (_port("similarity_graph", kinds.SIMILARITY_GRAPH),)

    def __init__(
        self,
        mode: str = "threshold",
        similarity: str = "jaccard",
        threshold: float = 0.4,
        classifier_epochs: int = 300,
        decision_threshold: float = 0.5,
    ) -> None:
        super().__init__()
        self.mode = mode
        self.similarity = similarity
        self.threshold = threshold
        self.classifier_epochs = classifier_epochs
        self.decision_threshold = decision_threshold

    def run(self, context: "PipelineContext", *, profiles, candidate_pairs, partitioning=None):
        config = MatcherConfig(
            mode=self.mode,
            similarity=self.similarity,
            threshold=self.threshold,
            classifier_epochs=self.classifier_epochs,
            decision_threshold=self.decision_threshold,
        )
        matcher = EntityMatcher(
            config,
            rules=context.extras.get("rules"),
            labeled_pairs=context.extras.get("labeled_pairs"),
            partitioning=partitioning,
            matcher=context.extras.get("matcher"),
        )
        similarity_graph = matcher.match(profiles, sorted(candidate_pairs))
        metrics: dict[str, object] = {"matched_pairs": len(similarity_graph)}
        if context.ground_truth is not None:
            metrics.update(
                pair_metrics(similarity_graph.pairs(), context.ground_truth).as_dict()
            )
        context.record(self.label, metrics)
        return {"similarity_graph": similarity_graph}


@register_stage
class ClusteringStage(Stage):
    """Entity clustering: partition the similarity graph into entities."""

    kind = "clustering"
    inputs = (_port("similarity_graph", kinds.SIMILARITY_GRAPH),)
    outputs = (_port("clusters", kinds.CLUSTERS),)

    def __init__(self, algorithm: str = "connected_components", min_score: float = 0.0) -> None:
        super().__init__()
        self.algorithm = algorithm
        self.min_score = min_score

    def run(self, context: "PipelineContext", *, similarity_graph):
        config = ClustererConfig(algorithm=self.algorithm, min_score=self.min_score)
        clusterer = EntityClusterer(config, engine=context.engine)
        clusters = clusterer.cluster(similarity_graph)
        metrics: dict[str, object] = {"clusters": len(clusters)}
        if context.ground_truth is not None:
            metrics.update(clustering_metrics(clusters, context.ground_truth))
        context.record(self.label, metrics)
        return {"clusters": clusters}


@register_stage
class EntityGenerationStage(Stage):
    """Entity generation: merge each cluster's profiles into one entity."""

    kind = "entity_generation"
    inputs = (_port("clusters", kinds.CLUSTERS), _port("profiles", kinds.PROFILES))
    outputs = (_port("entities", kinds.ENTITIES),)

    def __init__(self, include_singletons: bool = False) -> None:
        super().__init__()
        self.include_singletons = include_singletons

    def run(self, context: "PipelineContext", *, clusters, profiles):
        clusterer = EntityClusterer(ClustererConfig())
        entities = clusterer.generate_entities(
            clusters, profiles, include_singletons=self.include_singletons
        )
        context.record(self.label, {"entities": len(entities)})
        return {"entities": entities}


@register_stage
class EvaluationStage(Stage):
    """Final evaluation against the ground truth: pair and cluster quality.

    Collects whatever quality numbers apply to the artifacts wired in
    (candidate pairs, matched pairs, clusters) into one ``evaluation``
    artifact — useful at the end of partial pipelines whose stages did not
    evaluate inline.
    """

    kind = "evaluation"
    inputs = (
        _port("candidate_pairs", kinds.CANDIDATE_PAIRS, required=False),
        _port("similarity_graph", kinds.SIMILARITY_GRAPH, required=False),
        _port("clusters", kinds.CLUSTERS, required=False),
    )
    outputs = (_port("evaluation", kinds.EVALUATION),)

    def run(
        self,
        context: "PipelineContext",
        *,
        candidate_pairs=None,
        similarity_graph=None,
        clusters=None,
    ):
        if context.ground_truth is None:
            raise EvaluationError("the evaluation stage requires a ground truth")
        evaluation: dict[str, object] = {}
        if candidate_pairs is not None:
            evaluation["blocking"] = candidate_pair_stats(
                candidate_pairs,
                context.ground_truth,
                max_comparisons=context.max_comparisons,
            )
        if similarity_graph is not None:
            evaluation["matching"] = pair_metrics(
                similarity_graph.pairs(), context.ground_truth
            ).as_dict()
        if clusters is not None:
            evaluation["clustering"] = clustering_metrics(clusters, context.ground_truth)
        flat: dict[str, object] = {}
        for section, metrics in evaluation.items():
            for key, value in metrics.items():
                flat[f"{section}.{key}"] = value
        context.record(self.label, flat)
        return {"evaluation": evaluation}
