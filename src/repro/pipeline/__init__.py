"""Composable stage-graph pipeline API.

The paper's central architectural claim (Figure 3) is that entity resolution
decomposes into *black-box modules* that non-expert users can recombine:
profiles flow through the Blocker, the Entity Matcher and the Entity
Clusterer, and each module is internally a short pipeline of interchangeable
steps.  This package is the library form of that claim — every step is a
typed :class:`~repro.pipeline.stage.Stage` in a string-keyed registry, and a
:class:`~repro.pipeline.runner.Pipeline` wires any subset of them together
from a plain dict/JSON spec, with composition-time validation of the artifact
kinds that flow between them.

Mapping of registered stages to Figure 3 of the paper:

====================== ======================================================
Registry key            Paper module / figure element
====================== ======================================================
``loose_schema``        Blocker → Loose-schema generator (Figure 4, BLAST:
                        LSH attribute partitioning + cluster entropies)
``token_blocking``      Blocker → Block generation (schema-agnostic token
                        blocking, or loose-schema blocking when a
                        partitioning artifact is wired in)
``block_purging``       Blocker → Block purging
``block_filtering``     Blocker → Block filtering
``meta_blocking``       Blocker → Meta-blocking (graph weighting + pruning;
                        broadcast-join parallel variant under an engine)
``block_comparisons``   Blocker → candidate pairs without meta-blocking
``progressive_meta_blocking``  Progressive ER extension ([6] of the demo
                        paper): budgeted best-first candidate emission
``matching``            Entity Matcher (threshold / rules / classifier)
``clustering``          Entity Clusterer → connected components &
                        alternative algorithms (Figure 5)
``entity_generation``   Entity Clusterer → entity generation (merged
                        attribute values per cluster)
``evaluation``          The demo GUI's quality panels: blocking, matching
                        and clustering metrics vs the ground truth
====================== ======================================================

Quick start::

    from repro.pipeline import Pipeline

    result = Pipeline.from_spec({
        "stages": [
            {"stage": "token_blocking"},
            {"stage": "block_purging"},
            {"stage": "block_filtering"},
            {"stage": "meta_blocking", "params": {"weighting": "cbs",
                                                  "pruning": "wnp"}},
            {"stage": "matching", "params": {"threshold": 0.4}},
            {"stage": "clustering"},
            {"stage": "entity_generation"},
        ],
    }).run(profiles, ground_truth)
    result.entities, result.summary(), result.stage_rows()

The legacy :class:`repro.core.sparker.SparkER` facade is a thin wrapper over
``Pipeline.from_spec(SparkER.canonical_spec(config))`` and produces
bit-for-bit identical results.
"""

from repro.pipeline.artifacts import ArtifactStore, KNOWN_KINDS
from repro.pipeline.checkpoint import PipelineCheckpoint
from repro.pipeline.registry import (
    make_stage,
    register_stage,
    registered_stages,
    stage_catalog,
    stage_parameters,
)
from repro.pipeline.runner import Pipeline, PipelineContext, PipelineResult
from repro.pipeline.stage import ArtifactSpec, Stage, StageExecution

# Importing the adapters populates the registry.
from repro.pipeline import stages as _stages  # noqa: F401

__all__ = [
    "ArtifactSpec",
    "ArtifactStore",
    "KNOWN_KINDS",
    "Pipeline",
    "PipelineCheckpoint",
    "PipelineContext",
    "PipelineResult",
    "Stage",
    "StageExecution",
    "make_stage",
    "register_stage",
    "registered_stages",
    "stage_catalog",
    "stage_parameters",
]
