"""The typed stage protocol of the pipeline package.

A stage declares *ports*: named inputs and outputs, each tagged with an
artifact kind.  Port names double as default store keys; a spec can rebind
them (``"inputs": {"blocks": "raw_blocks"}``) so the same stage class works at
any position of a graph.  Declaring kinds up front is what makes composition
checkable before anything runs: :meth:`repro.pipeline.runner.Pipeline.validate`
simulates the store and rejects a wiring whose artifacts are missing or of
the wrong kind.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, ClassVar

from repro.exceptions import PipelineValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.runner import PipelineContext


@dataclass(frozen=True)
class ArtifactSpec:
    """One declared port of a stage: a name, an artifact kind, optionality.

    The port ``name`` is also the keyword argument under which the artifact
    is passed to :meth:`Stage.run` and the default store key.
    """

    name: str
    kind: str | None = None
    required: bool = True

    def __post_init__(self) -> None:
        if self.kind is None:
            object.__setattr__(self, "kind", self.name)


def _port(name: str, kind: str | None = None, *, required: bool = True) -> ArtifactSpec:
    """Shorthand used by the stage declarations."""
    return ArtifactSpec(name=name, kind=kind, required=required)


class Stage:
    """Base class of every pipeline stage.

    Class attributes
    ----------------
    kind:
        The registry key of the stage (``"token_blocking"``, ``"matching"``…).
    inputs / outputs:
        The declared ports (:class:`ArtifactSpec` tuples).

    Instance attributes
    -------------------
    label:
        The unique name of this stage *instance* inside a pipeline; defaults
        to ``kind``.  Report rows and checkpoints are keyed by label.
    bind / emit:
        Port-name → store-key remappings for inputs and outputs.
    """

    kind: ClassVar[str] = ""
    inputs: ClassVar[tuple[ArtifactSpec, ...]] = ()
    outputs: ClassVar[tuple[ArtifactSpec, ...]] = ()

    label: str
    bind: dict[str, str]
    emit: dict[str, str]

    def __init__(self) -> None:
        # Concrete stages call super().__init__() before storing their params.
        self.label = type(self).kind
        self.bind = {}
        self.emit = {}

    # ------------------------------------------------------------ composition
    def configure(
        self,
        *,
        label: str | None = None,
        inputs: dict[str, str] | None = None,
        outputs: dict[str, str] | None = None,
    ) -> "Stage":
        """Set the instance label and port remappings; returns ``self``.

        Unknown port names raise :class:`PipelineValidationError` so a typo in
        a spec fails at composition time, not mid-run.
        """
        if label is not None:
            self.label = label
        for mapping, ports, what in (
            (inputs, self.inputs, "input"),
            (outputs, self.outputs, "output"),
        ):
            if not mapping:
                continue
            known = {spec.name for spec in ports}
            for port in mapping:
                if port not in known:
                    raise PipelineValidationError(
                        f"stage {self.kind!r} has no {what} port {port!r}; "
                        f"ports: {sorted(known) or '(none)'}"
                    )
            target = self.bind if what == "input" else self.emit
            target.update(mapping)
        return self

    def input_key(self, port: str) -> str:
        """The store key this instance reads ``port`` from."""
        return self.bind.get(port, port)

    def output_key(self, port: str) -> str:
        """The store key this instance writes ``port`` to."""
        return self.emit.get(port, port)

    # ----------------------------------------------------------------- params
    def params(self) -> dict[str, object]:
        """The resolved constructor parameters of this instance.

        The default implementation mirrors the ``__init__`` signature: every
        parameter must be stored under an attribute of the same name.  The
        result is JSON-compatible for all built-in stages and is what
        ``Pipeline.resolved_spec()`` records for provenance.
        """
        signature = inspect.signature(type(self).__init__)
        resolved: dict[str, object] = {}
        for name, parameter in signature.parameters.items():
            if name == "self" or parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            resolved[name] = getattr(self, name)
        return resolved

    # ------------------------------------------------------------------ spec
    def as_spec(self) -> dict[str, object]:
        """One resolved spec entry (stage kind, label, params, port bindings)."""
        entry: dict[str, object] = {"stage": self.kind}
        if self.label != self.kind:
            entry["label"] = self.label
        params = self.params()
        if params:
            entry["params"] = params
        if self.bind:
            entry["inputs"] = dict(self.bind)
        if self.emit:
            entry["outputs"] = dict(self.emit)
        return entry

    # ------------------------------------------------------------------- run
    def run(self, context: "PipelineContext", **artifacts: Any) -> dict[str, Any]:
        """Execute the stage; return a port-name → artifact mapping."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(label={self.label!r})"


@dataclass
class StageExecution:
    """What one stage did during a run (the unified-report record)."""

    label: str
    kind: str
    params: dict[str, object] = field(default_factory=dict)
    seconds: float = 0.0
    resumed: bool = False
    engine: dict[str, int] = field(default_factory=dict)
    # Free-form execution details (e.g. the resolved kernel backend of a
    # meta-blocking stage), surfaced as extra columns of the executions table.
    detail: dict[str, object] = field(default_factory=dict)

    def as_row(self, metrics: dict[str, object] | None = None) -> dict[str, object]:
        """One row of the unified per-stage table (CLI output)."""
        row: dict[str, object] = {
            "stage": self.label,
            "status": "resumed" if self.resumed else "run",
            "seconds": round(self.seconds, 4),
            "tasks": self.engine.get("tasks", 0),
            "shuffle_records": self.engine.get("shuffle_records", 0),
            "shuffle_bytes": self.engine.get("shuffle_bytes", 0),
        }
        # getattr: executions unpickled from pre-detail checkpoints lack it.
        row.update(getattr(self, "detail", None) or {})
        if metrics:
            row.update(metrics)
        return row
