"""The pipeline runner: validated composition, execution, checkpoint/resume.

``Pipeline`` executes a list of :class:`~repro.pipeline.stage.Stage` instances
in order over a shared :class:`~repro.pipeline.artifacts.ArtifactStore`,
recording per-stage wall-clock and engine-metric deltas into one unified
report.  Pipelines are buildable three ways:

* directly, from stage instances: ``Pipeline([TokenBlockingStage(), ...])``;
* declaratively, from a plain dict/JSON spec: ``Pipeline.from_spec({...})``;
* from a checkpoint directory: ``Pipeline.from_checkpoint(path)``.

When a ``checkpoint`` directory is given to :meth:`Pipeline.run`, the whole
run state is persisted after every completed stage; re-running with
``resume=True`` (or ``Pipeline.resume(path)``) skips completed stages and
continues from the stored artifacts — the resumed result is identical to an
uninterrupted run.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.data.dataset import ProfileCollection
from repro.data.ground_truth import GroundTruth
from repro.engine.context import EngineContext
from repro.evaluation.report import PipelineReport
from repro.exceptions import PipelineError, PipelineValidationError
from repro.pipeline.artifacts import PROFILES, ArtifactStore
from repro.pipeline.checkpoint import PipelineCheckpoint
from repro.pipeline.registry import make_stage
from repro.pipeline.stage import Stage, StageExecution
from repro.utils.timers import StageTimings, Timer

_UNSET = object()

_ENGINE_COUNTERS = (
    "jobs",
    "stages",
    "tasks",
    "shuffle_records",
    "shuffle_bytes",
    "shuffle_relay_bytes",
    "shuffle_peer_bytes",
)

# Monotonic counters in EngineContext.metrics_summary() that a per-run view
# must report as deltas; everything else (e.g. default_parallelism) is a
# configuration gauge and passes through unchanged.
_ENGINE_RUN_COUNTERS = _ENGINE_COUNTERS + (
    "broadcasts",
    "accumulators",
    "task_attempts",
    "task_failures",
    "tasks_recovered",
)

_SPEC_ENTRY_KEYS = {"stage", "label", "params", "inputs", "outputs"}

# "dataset" is CLI provenance (which inputs to load), tolerated so resolved
# specs written by `run --output-config` feed straight back into from_spec.
_SPEC_TOP_KEYS = {"name", "engine", "seeds", "stages", "dataset"}


def _executed_kernel_backend(executions: "list[StageExecution]") -> str | None:
    """The backend a meta-blocking stage of this run actually resolved to.

    ``None`` when no stage recorded one — a pipeline without meta-blocking
    must not claim a kernel backend in its summary.
    """
    for execution in executions:
        backend = (getattr(execution, "detail", None) or {}).get("kernel_backend")
        if backend is not None:
            return str(backend)
    return None


def _engine_snapshot(engine: EngineContext | None) -> dict[str, int]:
    if engine is None:
        return {}
    summary = engine.metrics_summary()
    return {counter: int(summary[counter]) for counter in _ENGINE_COUNTERS}


def _engine_delta(before: dict[str, int], after: dict[str, int]) -> dict[str, int]:
    return {counter: after[counter] - before[counter] for counter in after}


def _engine_run_metrics(
    engine: EngineContext | None, run_start: dict[str, object]
) -> dict[str, object]:
    """The engine summary scoped to this run: integer counters as deltas.

    An :class:`EngineContext` can outlive many pipeline runs (the facade
    reuses one); reporting lifetime counters would double-count every run
    after the first.
    """
    if engine is None:
        return {}
    summary = dict(engine.metrics_summary())
    for key in _ENGINE_RUN_COUNTERS:
        value, start = summary.get(key), run_start.get(key)
        if isinstance(value, int) and isinstance(start, int):
            summary[key] = value - start
    return summary


@dataclass
class PipelineContext:
    """Everything a stage may need beyond its declared input artifacts."""

    engine: EngineContext | None = None
    ground_truth: GroundTruth | None = None
    extras: dict[str, Any] = field(default_factory=dict)
    report: PipelineReport = field(default_factory=PipelineReport)
    max_comparisons: int = 0
    # The engine section's kernel backend spec (auto/python/numpy or None);
    # the meta-blocking stages resolve it per run.
    kernel_backend: str | None = None
    # The engine section's buffer backend spec (ram/memmap or None) and the
    # temp-file root for memmap index buffers; resolved per stage run.
    buffer_backend: str | None = None
    tmp_dir: str | None = None
    _stage_details: dict[str, dict[str, object]] = field(default_factory=dict)

    def record(self, stage: str, metrics: dict[str, object]) -> None:
        """Record the metric snapshot of one stage into the unified report."""
        self.report.add(stage, metrics)

    def annotate(self, stage: str, **details: object) -> None:
        """Attach execution details (e.g. the resolved kernel backend) to a
        stage; the runner surfaces them in the per-stage executions table."""
        self._stage_details.setdefault(stage, {}).update(details)


@dataclass
class PipelineResult:
    """Everything one pipeline run produced."""

    name: str
    artifacts: ArtifactStore
    report: PipelineReport
    executions: list[StageExecution]
    timings: StageTimings
    engine_metrics: dict[str, object] = field(default_factory=dict)
    spec: dict[str, object] = field(default_factory=dict)
    completed: list[str] = field(default_factory=list)
    partial: bool = False
    kernel_backend: str | None = None

    # ------------------------------------------------------- common artifacts
    @property
    def candidate_pairs(self) -> set[tuple[int, int]]:
        return self.artifacts.get("candidate_pairs", set())  # type: ignore[return-value]

    @property
    def similarity_graph(self):
        return self.artifacts.get("similarity_graph")

    @property
    def clusters(self) -> list:
        return self.artifacts.get("clusters", [])  # type: ignore[return-value]

    @property
    def entities(self) -> list[dict[str, object]]:
        return self.artifacts.get("entities", [])  # type: ignore[return-value]

    # ----------------------------------------------------------------- report
    def stage_rows(self) -> list[dict[str, object]]:
        """Uniform per-stage rows: status, seconds, engine counter deltas.

        Detail columns (e.g. a meta-blocking stage's resolved kernel backend)
        are backfilled as empty cells on the other rows so the table renderer
        — which takes its columns from the first row — keeps them visible.
        """
        rows = [execution.as_row() for execution in self.executions]
        detail_keys: list[str] = []
        for execution in self.executions:
            for key in getattr(execution, "detail", None) or {}:
                if key not in detail_keys:
                    detail_keys.append(key)
        for row in rows:
            for key in detail_keys:
                row.setdefault(key, "")
        return rows

    def summary(self) -> dict[str, object]:
        """Headline numbers of the run, engine metrics included."""
        summary: dict[str, object] = {
            "stages_run": sum(1 for e in self.executions if not e.resumed),
            "stages_resumed": sum(1 for e in self.executions if e.resumed),
            "seconds": round(self.timings.total, 4),
        }
        for key in ("candidate_pairs", "similarity_graph", "clusters", "entities"):
            value = self.artifacts.get(key)
            if value is None:
                continue
            try:
                summary[key] = len(value)  # type: ignore[arg-type]
            except TypeError:
                pass
        if self.kernel_backend is not None:
            summary["kernel_backend"] = self.kernel_backend
        if self.engine_metrics:
            summary["engine"] = dict(self.engine_metrics)
        return summary


class Pipeline:
    """An ordered, validated stage graph over a keyed artifact store.

    Parameters
    ----------
    stages:
        The stage instances, executed in order.
    engine:
        Optional :class:`EngineContext` made available to every stage; a
        pipeline built by :meth:`from_spec` with an enabled engine section
        creates (and owns) its own context.
    name:
        Label used in reports and specs.
    seeds:
        Extra artifacts the caller promises to provide at :meth:`run` time,
        as a key → kind mapping; ``profiles`` is always seeded.
    """

    def __init__(
        self,
        stages: Iterable[Stage],
        *,
        engine: EngineContext | None = None,
        name: str = "pipeline",
        seeds: Mapping[str, str] | None = None,
        engine_spec: Mapping[str, object] | None = None,
        kernel_backend: str | None = None,
        buffer_backend: str | None = None,
        tmp_dir: str | None = None,
    ) -> None:
        self.stages = list(stages)
        if not self.stages:
            raise PipelineValidationError("a pipeline needs at least one stage")
        self.engine = engine
        self.name = name
        self.seeds = {PROFILES: PROFILES}
        if seeds:
            self.seeds.update(seeds)
        self._owns_engine = False
        self._engine_spec = dict(engine_spec) if engine_spec else None
        self.kernel_backend = kernel_backend
        self.buffer_backend = buffer_backend
        self.tmp_dir = tmp_dir
        self.validate()

    # ------------------------------------------------------------- composition
    def validate(self, available: Mapping[str, str] | None = None) -> None:
        """Simulate the store and reject inconsistent wirings.

        Checks that stage labels are unique and that every required input key
        exists — with the declared kind — by the time its stage runs.
        """
        manifest: dict[str, str] = dict(available if available is not None else self.seeds)
        labels: set[str] = set()
        for position, stage in enumerate(self.stages):
            if stage.label in labels:
                raise PipelineValidationError(
                    f"duplicate stage label {stage.label!r}; give one instance an "
                    "explicit 'label' in the spec"
                )
            labels.add(stage.label)
            for spec in stage.inputs:
                key = stage.input_key(spec.name)
                if key in manifest:
                    if manifest[key] != spec.kind:
                        raise PipelineValidationError(
                            f"stage {stage.label!r} (position {position}) expects "
                            f"input {key!r} of kind {spec.kind!r} but the store "
                            f"will hold kind {manifest[key]!r}"
                        )
                elif spec.required:
                    raise PipelineValidationError(
                        f"stage {stage.label!r} (position {position}) requires "
                        f"input {key!r} of kind {spec.kind!r}, which no earlier "
                        "stage produces and no seed provides"
                    )
            for spec in stage.outputs:
                manifest[stage.output_key(spec.name)] = spec.kind

    # -------------------------------------------------------------------- spec
    @classmethod
    def from_spec(
        cls,
        spec: Mapping[str, object],
        *,
        engine: "EngineContext | object" = _UNSET,
    ) -> "Pipeline":
        """Build a pipeline from a plain dict/JSON spec.

        Spec shape::

            {
              "name": "my-pipeline",                    # optional
              "engine": {"enabled": true,               # optional section
                         "parallelism": 4,
                         "executor": "process:2",
                         "block_store": "shared-memory"},
              "seeds": {"blocks": "blocks"},            # optional extra seeds
              "stages": [
                {"stage": "token_blocking",
                 "label": "tb",                         # optional
                 "params": {"min_token_length": 2},     # optional
                 "inputs": {...}, "outputs": {...}}     # optional rebinding
              ]
            }

        ``engine=`` overrides the spec's engine section with a caller-managed
        context (pass ``None`` to force driver-side execution).
        """
        if not isinstance(spec, Mapping):
            raise PipelineValidationError("a pipeline spec must be a mapping")
        unknown_top = set(spec) - _SPEC_TOP_KEYS
        if unknown_top:
            raise PipelineValidationError(
                f"unknown keys in pipeline spec: {sorted(unknown_top)}; "
                f"accepted: {sorted(_SPEC_TOP_KEYS)}"
            )
        stage_entries = spec.get("stages")
        if not isinstance(stage_entries, (list, tuple)) or not stage_entries:
            raise PipelineValidationError("spec['stages'] must be a non-empty list")
        stages: list[Stage] = []
        for entry in stage_entries:
            if isinstance(entry, str):
                entry = {"stage": entry}
            if not isinstance(entry, Mapping):
                raise PipelineValidationError(
                    f"each stage entry must be a mapping or a stage name, got {entry!r}"
                )
            unknown = set(entry) - _SPEC_ENTRY_KEYS
            if unknown:
                raise PipelineValidationError(
                    f"unknown keys in stage entry: {sorted(unknown)}; "
                    f"accepted: {sorted(_SPEC_ENTRY_KEYS)}"
                )
            kind = entry.get("stage")
            if not isinstance(kind, str):
                raise PipelineValidationError("each stage entry needs a 'stage' name")
            stage = make_stage(kind, dict(entry.get("params") or {}))
            stage.configure(
                label=entry.get("label"),
                inputs=dict(entry.get("inputs") or {}),
                outputs=dict(entry.get("outputs") or {}),
            )
            stages.append(stage)

        engine_section = dict(spec.get("engine") or {})
        fault_policy = engine_section.get("fault_policy")
        if fault_policy is not None and not isinstance(fault_policy, (str, Mapping)):
            raise PipelineValidationError(
                f"engine.fault_policy must be a string or mapping, got {fault_policy!r}"
            )
        block_store = engine_section.get("block_store")
        if block_store is not None and not isinstance(block_store, str):
            raise PipelineValidationError(
                f"engine.block_store must be a string, got {block_store!r}"
            )
        tmp_dir = engine_section.get("tmp_dir")
        if tmp_dir is not None and not isinstance(tmp_dir, str):
            raise PipelineValidationError(
                f"engine.tmp_dir must be a string, got {tmp_dir!r}"
            )
        owns_engine = False
        if engine is not _UNSET:
            engine_context = engine  # caller-managed (possibly None)
        elif engine_section.get("enabled"):
            engine_context = EngineContext(
                default_parallelism=int(engine_section.get("parallelism", 4)),
                executor=engine_section.get("executor"),
                fault_policy=fault_policy,
                block_store=block_store,
                tmp_dir=tmp_dir,
            )
            owns_engine = True
        else:
            engine_context = None

        kernel_backend = engine_section.get("kernel_backend")
        if kernel_backend is not None and not isinstance(kernel_backend, str):
            raise PipelineValidationError(
                f"engine.kernel_backend must be a string, got {kernel_backend!r}"
            )
        buffer_backend = engine_section.get("buffer_backend")
        if buffer_backend is not None and not isinstance(buffer_backend, str):
            raise PipelineValidationError(
                f"engine.buffer_backend must be a string, got {buffer_backend!r}"
            )
        pipeline = cls(
            stages,
            engine=engine_context,  # type: ignore[arg-type]
            name=str(spec.get("name", "pipeline")),
            seeds=dict(spec.get("seeds") or {}),
            engine_spec=engine_section or None,
            kernel_backend=kernel_backend,
            buffer_backend=buffer_backend,
            tmp_dir=tmp_dir,
        )
        pipeline._owns_engine = owns_engine
        return pipeline

    def resolved_spec(self) -> dict[str, object]:
        """The provenance spec: every stage with its resolved parameters.

        Round-trips: ``Pipeline.from_spec(p.resolved_spec())`` builds an
        equivalent pipeline.
        """
        engine_section: dict[str, object]
        if self._engine_spec is not None:
            engine_section = dict(self._engine_spec)
        else:
            engine_section = {"enabled": self.engine is not None}
            if self.engine is not None:
                engine_section["parallelism"] = self.engine.default_parallelism
                engine_section["executor"] = self.engine.executor.name
            if self.kernel_backend is not None:
                engine_section["kernel_backend"] = self.kernel_backend
            if self.buffer_backend is not None:
                engine_section["buffer_backend"] = self.buffer_backend
            if self.tmp_dir is not None:
                engine_section["tmp_dir"] = self.tmp_dir
        spec: dict[str, object] = {
            "name": self.name,
            "engine": engine_section,
            "stages": [stage.as_spec() for stage in self.stages],
        }
        extra_seeds = {k: v for k, v in self.seeds.items() if k != PROFILES}
        if extra_seeds:
            spec["seeds"] = extra_seeds
        return spec

    # -------------------------------------------------------------- checkpoint
    @classmethod
    def from_checkpoint(
        cls,
        checkpoint: "str | os.PathLike[str] | PipelineCheckpoint",
        *,
        engine: "EngineContext | object" = _UNSET,
    ) -> "Pipeline":
        """Rebuild the pipeline whose run state is stored in ``checkpoint``."""
        if not isinstance(checkpoint, PipelineCheckpoint):
            checkpoint = PipelineCheckpoint(checkpoint)
        state = checkpoint.load()
        return cls.from_spec(state["spec"], engine=engine)

    @classmethod
    def resume(
        cls,
        checkpoint: "str | os.PathLike[str] | PipelineCheckpoint",
        *,
        engine: "EngineContext | object" = _UNSET,
        extras: Mapping[str, Any] | None = None,
        stop_after: str | None = None,
    ) -> "PipelineResult":
        """One-call resume: rebuild from ``checkpoint`` and finish the run.

        Extras are never checkpointed (they exist precisely because they do
        not serialise), so a run that used them must pass them again here.
        """
        if not isinstance(checkpoint, PipelineCheckpoint):
            checkpoint = PipelineCheckpoint(checkpoint)
        # Load the (potentially huge) state pickle once and share it with
        # run() instead of letting it re-load the same file.
        state = checkpoint.load()
        pipeline = cls.from_spec(state["spec"], engine=engine)
        try:
            return pipeline.run(
                None,
                extras=extras,
                checkpoint=checkpoint,
                resume=True,
                stop_after=stop_after,
                _resume_state=state,
            )
        finally:
            pipeline.shutdown()

    # --------------------------------------------------------------------- run
    def run(
        self,
        profiles: ProfileCollection | None,
        ground_truth: GroundTruth | None = None,
        *,
        artifacts: Mapping[str, object] | None = None,
        extras: Mapping[str, Any] | None = None,
        checkpoint: "str | os.PathLike[str] | PipelineCheckpoint | None" = None,
        resume: bool = False,
        stop_after: str | None = None,
        _resume_state: "dict[str, Any] | None" = None,
    ) -> PipelineResult:
        """Execute the stage graph and return every artifact plus the report.

        Parameters
        ----------
        profiles / ground_truth:
            The input data.  ``profiles`` may be ``None`` only when resuming
            (the checkpoint stores the inputs of the original run).
        artifacts:
            Extra seed artifacts, keyed by store key; the kind defaults to
            the key, or pass ``(kind, value)`` tuples for remapped keys.
        extras:
            Non-serialisable stage inputs (matching rules, custom matchers…),
            available to stages as ``context.extras``.  Never written to
            checkpoints — pass them again when resuming.
        checkpoint:
            Directory to persist the run state into after every stage.
        resume:
            Load ``checkpoint`` and skip its completed stages.
        stop_after:
            Stop (checkpoint intact) after the stage with this label.
        """
        if stop_after is not None and stop_after not in {s.label for s in self.stages}:
            raise PipelineValidationError(
                f"stop_after={stop_after!r} matches no stage label"
            )
        if checkpoint is not None and not isinstance(checkpoint, PipelineCheckpoint):
            checkpoint = PipelineCheckpoint(checkpoint)

        extras_dict = dict(extras) if extras else {}
        if resume:
            if checkpoint is None:
                raise PipelineError("resume=True requires a checkpoint directory")
            state = _resume_state if _resume_state is not None else checkpoint.load()
            stored_stages = state.get("spec", {}).get("stages")
            if stored_stages != self.resolved_spec()["stages"]:
                raise PipelineError(
                    "checkpoint was written by a different pipeline spec; "
                    "rebuild it with Pipeline.from_checkpoint() or start fresh"
                )
            store: ArtifactStore = state["store"]
            report: PipelineReport = state["report"]
            executions: list[StageExecution] = list(state["executions"])
            timings: StageTimings = state["timings"]
            completed: set[str] = set(state["completed"])
            for execution in executions:
                execution.resumed = True
            if profiles is None:
                profiles = state["profiles"]
            if ground_truth is None:
                ground_truth = state["ground_truth"]
        else:
            if profiles is None:
                raise PipelineError("run() needs a profile collection")
            store = ArtifactStore()
            report = PipelineReport()
            executions = []
            timings = StageTimings()
            completed = set()
            store.put(PROFILES, PROFILES, profiles)
            for key, value in (artifacts or {}).items():
                if isinstance(value, tuple) and len(value) == 2 and isinstance(value[0], str):
                    store.put(key, value[0], value[1])
                else:
                    store.put(key, key, value)

        # Re-validate against what is actually seeded (catches partial
        # pipelines whose declared seeds were never provided).
        self.validate(available=store.manifest())

        run_start_metrics = dict(self.engine.metrics_summary()) if self.engine else {}
        context = PipelineContext(
            engine=self.engine,
            ground_truth=ground_truth,
            extras=extras_dict,
            report=report,
            max_comparisons=profiles.max_comparisons(),
            kernel_backend=self.kernel_backend,
            buffer_backend=self.buffer_backend,
            tmp_dir=self.tmp_dir,
        )

        stopped = False
        for stage in self.stages:
            if stage.label in completed:
                if stop_after == stage.label:
                    stopped = True
                    break
                continue
            inputs: dict[str, Any] = {}
            for spec in stage.inputs:
                key = stage.input_key(spec.name)
                if key in store:
                    inputs[spec.name] = store.get(key)
                elif spec.required:
                    raise PipelineError(
                        f"stage {stage.label!r} is missing required input {key!r}"
                    )
            before = _engine_snapshot(self.engine)
            with Timer() as timer:
                outputs = stage.run(context, **inputs)
            delta = _engine_delta(before, _engine_snapshot(self.engine))
            for spec in stage.outputs:
                if spec.name not in outputs:
                    raise PipelineError(
                        f"stage {stage.label!r} did not produce declared "
                        f"output {spec.name!r}"
                    )
                store.put(stage.output_key(spec.name), spec.kind, outputs[spec.name])
            executions.append(
                StageExecution(
                    label=stage.label,
                    kind=stage.kind,
                    params=stage.params(),
                    seconds=timer.elapsed,
                    engine=delta,
                    detail=context._stage_details.pop(stage.label, {}),
                )
            )
            timings.record(stage.label, timer.elapsed)
            completed.add(stage.label)
            if checkpoint is not None:
                checkpoint.save(
                    self._checkpoint_state(
                        store=store,
                        report=report,
                        executions=executions,
                        timings=timings,
                        completed=[e.label for e in executions],
                        profiles=profiles,
                        ground_truth=ground_truth,
                    )
                )
            if stop_after == stage.label:
                stopped = True
                break

        return PipelineResult(
            name=self.name,
            artifacts=store,
            report=report,
            executions=executions,
            timings=timings,
            engine_metrics=_engine_run_metrics(self.engine, run_start_metrics),
            spec=self.resolved_spec(),
            completed=[execution.label for execution in executions],
            partial=stopped,
            kernel_backend=_executed_kernel_backend(executions),
        )

    def _checkpoint_state(self, **parts: Any) -> dict[str, Any]:
        store: ArtifactStore = parts["store"]
        return {
            "spec": self.resolved_spec(),
            "completed": parts["completed"],
            "store": store,
            "report": parts["report"],
            "executions": parts["executions"],
            "timings": parts["timings"],
            "profiles": parts["profiles"],
            "ground_truth": parts["ground_truth"],
            "artifact_manifest": store.manifest(),
        }

    # --------------------------------------------------------------- lifecycle
    def shutdown(self) -> None:
        """Release the engine if this pipeline created it (from a spec)."""
        if self._owns_engine and self.engine is not None:
            self.engine.stop()
            self._owns_engine = False

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        labels = ", ".join(stage.label for stage in self.stages)
        return f"Pipeline(name={self.name!r}, stages=[{labels}])"
