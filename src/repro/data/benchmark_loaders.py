"""Loaders for the public ER benchmark datasets used by the SparkER demo.

The demo runs on the Abt-Buy dataset distributed by the University of Leipzig
("FEVER" benchmark collection): two CSV files (``Abt.csv``, ``Buy.csv``) plus
a perfect-mapping CSV (``abt_buy_perfectMapping.csv``) whose columns are the
original record ids.  The same layout is used by the other datasets on the
page (Amazon-GoogleProducts, DBLP-ACM, DBLP-Scholar).

These loaders parse that layout when the files are available locally and
return the same :class:`~repro.data.dataset.DatasetPair` structure produced by
the synthetic generators, so the whole pipeline, the benchmarks and the debug
session run unchanged on the real data.  Nothing is downloaded: if the files
are absent, callers should fall back to :mod:`repro.data.synthetic`.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.data.dataset import DatasetPair, ProfileCollection
from repro.data.ground_truth import GroundTruth
from repro.data.loaders import load_csv
from repro.exceptions import DataError


def load_two_source_benchmark(
    source0_path: str | Path,
    source1_path: str | Path,
    mapping_path: str | Path,
    *,
    id_field: str = "id",
    mapping_left_field: str | None = None,
    mapping_right_field: str | None = None,
    name: str = "benchmark",
    encoding: str = "utf-8",
) -> DatasetPair:
    """Load a Leipzig-style clean-clean benchmark (two CSVs + perfect mapping).

    Parameters
    ----------
    source0_path / source1_path:
        The two record CSV files; every column except ``id_field`` becomes an
        attribute.
    mapping_path:
        The perfect-mapping CSV.  Its two columns hold the original ids of the
        matching records; by default the column names are taken from the CSV
        header (first column → source 0, second column → source 1), or they
        can be forced with ``mapping_left_field`` / ``mapping_right_field``.
    id_field:
        Name of the id column in the two record files.
    """
    source0_path, source1_path = Path(source0_path), Path(source1_path)
    mapping_path = Path(mapping_path)
    for path in (source0_path, source1_path, mapping_path):
        if not path.exists():
            raise DataError(f"benchmark file not found: {path}")

    profiles0 = load_csv(source0_path, id_field=id_field, source_id=0, start_id=0)
    profiles1 = load_csv(
        source1_path, id_field=id_field, source_id=1, start_id=len(profiles0)
    )

    collection = ProfileCollection(profiles0)
    for profile in profiles1:
        collection.add(profile)

    id_map0 = {p.original_id: p.profile_id for p in profiles0}
    id_map1 = {p.original_id: p.profile_id for p in profiles1}

    ground_truth = GroundTruth()
    with mapping_path.open(newline="", encoding=encoding) as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or len(reader.fieldnames) < 2:
            raise DataError(f"perfect mapping {mapping_path} needs at least two columns")
        left_field = mapping_left_field or reader.fieldnames[0]
        right_field = mapping_right_field or reader.fieldnames[1]
        for row in reader:
            left = id_map0.get(str(row[left_field]).strip())
            right = id_map1.get(str(row[right_field]).strip())
            if left is None or right is None:
                continue
            ground_truth.add(left, right)

    if len(ground_truth) == 0:
        raise DataError(
            f"no ground-truth pair of {mapping_path} could be mapped to record ids; "
            f"check id_field / mapping column names"
        )
    return DatasetPair(profiles=collection, ground_truth=ground_truth, name=name)


def load_abt_buy(directory: str | Path) -> DatasetPair:
    """Load the Abt-Buy benchmark from a directory with the Leipzig file names.

    Expects ``Abt.csv``, ``Buy.csv`` and ``abt_buy_perfectMapping.csv`` inside
    ``directory``.
    """
    directory = Path(directory)
    return load_two_source_benchmark(
        directory / "Abt.csv",
        directory / "Buy.csv",
        directory / "abt_buy_perfectMapping.csv",
        id_field="id",
        name="abt-buy",
        encoding="latin-1",
    )


def load_amazon_google(directory: str | Path) -> DatasetPair:
    """Load the Amazon-GoogleProducts benchmark (same Leipzig layout)."""
    directory = Path(directory)
    return load_two_source_benchmark(
        directory / "Amazon.csv",
        directory / "GoogleProducts.csv",
        directory / "Amzon_GoogleProducts_perfectMapping.csv",
        id_field="id",
        name="amazon-google",
        encoding="latin-1",
    )


def load_dblp_acm(directory: str | Path) -> DatasetPair:
    """Load the DBLP-ACM citation benchmark (same Leipzig layout)."""
    directory = Path(directory)
    return load_two_source_benchmark(
        directory / "DBLP2.csv",
        directory / "ACM.csv",
        directory / "DBLP-ACM_perfectMapping.csv",
        id_field="id",
        name="dblp-acm",
        encoding="latin-1",
    )
