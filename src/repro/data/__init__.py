"""Data model, loaders and synthetic dataset generators."""

from repro.data.profile import EntityProfile, KeyValue
from repro.data.dataset import ProfileCollection, DatasetPair
from repro.data.ground_truth import GroundTruth
from repro.data.loaders import load_csv, load_json, load_jsonl
from repro.data.synthetic import (
    SyntheticConfig,
    generate_abt_buy_like,
    generate_bibliographic,
    generate_dirty_persons,
    toy_bibliographic_dataset,
)

__all__ = [
    "EntityProfile",
    "KeyValue",
    "ProfileCollection",
    "DatasetPair",
    "GroundTruth",
    "load_csv",
    "load_json",
    "load_jsonl",
    "SyntheticConfig",
    "generate_abt_buy_like",
    "generate_bibliographic",
    "generate_dirty_persons",
    "toy_bibliographic_dataset",
]
