"""Round-trip serialization of profiles, ground truth and results to JSON."""

from __future__ import annotations

import json
from pathlib import Path

from repro.data.dataset import ProfileCollection
from repro.data.ground_truth import GroundTruth
from repro.data.profile import EntityProfile, KeyValue


def profile_to_dict(profile: EntityProfile) -> dict[str, object]:
    """Serialise one profile to a JSON-compatible dict."""
    return {
        "profile_id": profile.profile_id,
        "original_id": profile.original_id,
        "source_id": profile.source_id,
        "attributes": [[kv.attribute, kv.value] for kv in profile.attributes],
    }


def profile_from_dict(data: dict[str, object]) -> EntityProfile:
    """Rebuild a profile from :func:`profile_to_dict` output."""
    return EntityProfile(
        profile_id=int(data["profile_id"]),
        original_id=str(data.get("original_id", "")),
        source_id=int(data.get("source_id", 0)),
        attributes=[KeyValue(a, v) for a, v in data.get("attributes", [])],
    )


def save_collection(collection: ProfileCollection, path: str | Path) -> None:
    """Write a profile collection to a JSON file."""
    payload = [profile_to_dict(p) for p in collection]
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_collection(path: str | Path) -> ProfileCollection:
    """Read a profile collection written by :func:`save_collection`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return ProfileCollection(profile_from_dict(item) for item in payload)


def save_ground_truth(ground_truth: GroundTruth, path: str | Path) -> None:
    """Write ground-truth pairs to a JSON file."""
    Path(path).write_text(
        json.dumps(sorted(ground_truth.pairs())), encoding="utf-8"
    )


def load_ground_truth(path: str | Path) -> GroundTruth:
    """Read ground-truth pairs written by :func:`save_ground_truth`."""
    pairs = json.loads(Path(path).read_text(encoding="utf-8"))
    return GroundTruth((int(a), int(b)) for a, b in pairs)
