"""Synthetic dataset generators.

The EDBT demo runs on the Abt-Buy benchmark (2 000 products from two shopping
sites, with a ground truth).  That dataset must be downloaded, which is not
possible offline, so this module generates datasets with the same structural
properties:

* :func:`generate_abt_buy_like` -- a clean-clean product-matching task.  The
  two sources use *different attribute names* (``name``/``description``/
  ``price`` vs ``title``/``short_descr``/``list_price``/``manufacturer``) so
  the loose-schema attribute partitioning has real work to do; matching
  records share name tokens and part of the description, with typos, dropped
  words, reordered tokens and price jitter.
* :func:`generate_bibliographic` -- a clean-clean citation-matching task in
  the spirit of the paper's Figure 1 (titles, author lists, venues, years).
* :func:`generate_dirty_persons` -- a single-source (dirty ER) person
  deduplication task with duplicate clusters of varying size.
* :func:`toy_bibliographic_dataset` -- the exact 4-profile toy example of
  Figure 1, used by the unit tests and by ``benchmarks/bench_fig1``.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.dataset import DatasetPair, ProfileCollection
from repro.data.ground_truth import GroundTruth
from repro.data.profile import EntityProfile

# ---------------------------------------------------------------------------
# vocabulary used to synthesise product names / descriptions
# ---------------------------------------------------------------------------
_BRANDS = [
    "sony", "panasonic", "samsung", "canon", "nikon", "bose", "jvc", "lg",
    "philips", "toshiba", "sharp", "pioneer", "garmin", "logitech", "epson",
    "kodak", "olympus", "yamaha", "denon", "sanyo",
]
_PRODUCT_TYPES = [
    "camcorder", "television", "headphones", "speaker", "receiver", "printer",
    "camera", "projector", "monitor", "keyboard", "microwave", "refrigerator",
    "dishwasher", "blender", "vacuum", "dvd player", "gps navigator",
    "soundbar", "subwoofer", "amplifier",
]
_FEATURES = [
    "wireless", "portable", "digital", "compact", "professional", "hd",
    "bluetooth", "rechargeable", "stainless", "widescreen", "ultra", "mini",
    "stereo", "optical", "smart", "noise cancelling", "waterproof", "slim",
    "black", "silver",
]
_DESCRIPTION_WORDS = [
    "includes", "remote", "control", "battery", "warranty", "zoom", "lens",
    "display", "resolution", "output", "input", "channel", "surround",
    "energy", "efficient", "capacity", "design", "technology", "system",
    "premium", "quality", "performance", "adapter", "cable", "mount",
    "screen", "audio", "video", "memory", "storage", "usb", "hdmi",
]

_FIRST_NAMES = [
    "maria", "luca", "giovanni", "anna", "marco", "sofia", "paolo", "elena",
    "andrea", "laura", "stefano", "giulia", "francesco", "chiara", "matteo",
    "sara", "david", "john", "emily", "michael",
]
_LAST_NAMES = [
    "rossi", "bianchi", "ferrari", "russo", "gallo", "conti", "ricci",
    "marino", "greco", "bruno", "smith", "johnson", "brown", "garcia",
    "miller", "davis", "wilson", "moore", "taylor", "anderson",
]
_CITIES = [
    "modena", "bologna", "milano", "roma", "torino", "firenze", "napoli",
    "venezia", "genova", "verona", "boston", "cambridge", "austin", "seattle",
]
_VENUES = [
    "vldb", "sigmod", "icde", "edbt", "cikm", "kdd", "www", "ijcai", "aaai",
    "acl", "emnlp", "neurips", "icml", "sdm", "pkdd",
]
_TITLE_WORDS = [
    "entity", "resolution", "blocking", "meta", "schema", "agnostic", "loose",
    "scalable", "distributed", "parallel", "graph", "clustering", "matching",
    "learning", "deep", "neural", "query", "optimization", "index", "join",
    "stream", "data", "integration", "cleaning", "record", "linkage",
    "similarity", "search", "knowledge", "extraction",
]


@dataclass
class SyntheticConfig:
    """Parameters of the Abt-Buy-like generator.

    Parameters
    ----------
    num_entities:
        Number of distinct real-world products.
    match_rate:
        Fraction of entities that appear in *both* sources (the rest appear
        in only one of the two, alternating).
    typo_rate:
        Probability of perturbing a token of the second source's name.
    drop_rate:
        Probability of dropping a description token in the second source.
    seed:
        Random seed (the generator is fully deterministic given the seed).
    """

    num_entities: int = 300
    match_rate: float = 0.8
    typo_rate: float = 0.1
    drop_rate: float = 0.3
    seed: int = 42


def _typo(word: str, rng: random.Random) -> str:
    """Introduce a single-character typo into ``word``."""
    if len(word) < 3:
        return word
    position = rng.randrange(len(word))
    action = rng.choice(["delete", "swap", "replace"])
    chars = list(word)
    if action == "delete":
        del chars[position]
    elif action == "swap" and position < len(chars) - 1:
        chars[position], chars[position + 1] = chars[position + 1], chars[position]
    else:
        chars[position] = rng.choice("abcdefghijklmnopqrstuvwxyz")
    return "".join(chars)


def _product_entity(rng: random.Random, index: int) -> dict[str, object]:
    """Generate the canonical attributes of one real-world product."""
    brand = rng.choice(_BRANDS)
    product_type = rng.choice(_PRODUCT_TYPES)
    features = rng.sample(_FEATURES, k=rng.randint(1, 3))
    model = f"{brand[:2].upper()}{rng.randint(100, 9999)}"
    name = f"{brand} {' '.join(features)} {product_type} {model}"
    description_words = rng.sample(_DESCRIPTION_WORDS, k=rng.randint(6, 14))
    description = f"{brand} {product_type} " + " ".join(description_words)
    price = round(rng.uniform(20, 2000), 2)
    return {
        "index": index,
        "brand": brand,
        "type": product_type,
        "model": model,
        "name": name,
        "description": description,
        "price": price,
    }


def _iter_abt_buy_events(config: SyntheticConfig):
    """Replay the Abt-Buy draw sequence, one entity at a time, O(1) memory.

    The historical eager generator consumes its single rng in two phases:
    first *every* entity's canonical draws (phase 1), then every entity's
    membership/perturbation draws (phase 2).  Replaying that exact sequence
    without holding all entities needs two equal-seed rng streams: one feeds
    phase 1 lazily, the other fast-forwards past all phase-1 draws and then
    serves phase 2 — bit-for-bit the same values the eager two-phase loop
    drew, entity by entity.

    Yields ``(abt_profile | None, buy_profile | None)`` per entity, with
    *source-local* profile ids (the running per-source positions).
    """
    entity_rng = random.Random(config.seed)
    phase2_rng = random.Random(config.seed)
    for index in range(config.num_entities):
        _product_entity(phase2_rng, index)

    num_abt = 0
    num_buy = 0
    for index in range(config.num_entities):
        entity = _product_entity(entity_rng, index)
        rng = phase2_rng
        in_both = rng.random() < config.match_rate
        in_abt = in_both or (index % 2 == 0)
        in_buy = in_both or not in_abt

        abt_profile = None
        if in_abt:
            abt_profile = EntityProfile(
                profile_id=num_abt,
                original_id=f"abt-{index}",
                source_id=0,
            )
            abt_profile.add("name", entity["name"])
            abt_profile.add("description", entity["description"])
            abt_profile.add("price", f"{entity['price']:.2f}")
            num_abt += 1

        buy_profile = None
        if in_buy:
            name_tokens = str(entity["name"]).split()
            perturbed = []
            for token in name_tokens:
                if rng.random() < config.typo_rate:
                    perturbed.append(_typo(token, rng))
                else:
                    perturbed.append(token)
            description_tokens = [
                t for t in str(entity["description"]).split()
                if rng.random() > config.drop_rate
            ]
            price = float(entity["price"]) * rng.uniform(0.95, 1.05)
            buy_profile = EntityProfile(
                profile_id=num_buy,
                original_id=f"buy-{index}",
                source_id=1,
            )
            buy_profile.add("title", " ".join(perturbed))
            buy_profile.add("short_descr", " ".join(description_tokens))
            buy_profile.add("list_price", f"{price:.2f}")
            buy_profile.add("manufacturer", entity["brand"])
            num_buy += 1

        yield abt_profile, buy_profile


def iter_abt_buy_like(config: SyntheticConfig | None = None):
    """Yield the Abt-Buy-like profiles lazily, in merged-id-space order.

    The streaming counterpart of :func:`generate_abt_buy_like`: yields
    ``(profile, match)`` tuples where ``profile`` carries its *final* merged
    profile id (all abt profiles first, then all buy profiles, exactly the
    eager order) and ``match`` is the ``(abt_id, buy_id)`` ground-truth pair
    a matching buy profile closes, or ``None``.  Construction is O(1)
    memory: no intermediate per-source lists exist — the cost is a second
    deterministic replay of the draw sequence to learn the abt/buy id
    offset before the buy profiles stream out.
    """
    config = config or SyntheticConfig()
    offset = 0
    for abt_profile, _buy in _iter_abt_buy_events(config):
        if abt_profile is not None:
            yield abt_profile, None
            offset += 1
    for abt_profile, buy_profile in _iter_abt_buy_events(config):
        if buy_profile is None:
            continue
        merged = EntityProfile(
            profile_id=buy_profile.profile_id + offset,
            original_id=buy_profile.original_id,
            source_id=1,
            attributes=list(buy_profile.attributes),
        )
        match = None
        if abt_profile is not None:
            match = (abt_profile.profile_id, merged.profile_id)
        yield merged, match


def iter_scalability_products(
    num_entities: int,
    seed: int = 42,
    match_rate: float = 0.9,
    typo_rate: float = 0.1,
):
    """Yield a clean-clean product dataset sized for scalability runs, lazily.

    The Abt-Buy-like generator draws every token from a fixed vocabulary, so
    past a few thousand entities each token lands in thousands of profiles
    and the blocking graph grows quadratically dense — the wrong shape for
    measuring how meta-blocking *scales*.  Here the token vocabularies grow
    with ``num_entities`` (model ids are per-entity, series ids span
    ``num_entities // 8`` values, description words span ``num_entities``),
    so expected block sizes — and the per-profile graph degree — stay
    bounded as the dataset grows, like the real product feeds the paper's
    scalability experiments run on.

    Yields ``(profile, match)`` tuples in one pass with O(1) memory: the
    source-0 profile of each entity, then (with probability ``match_rate``)
    its perturbed source-1 counterpart carrying the ground-truth pair.
    Profile ids interleave the two sources in emission order.
    """
    rng = random.Random(seed)
    series_vocab = max(1, num_entities // 8)
    word_vocab = max(1, num_entities)
    next_id = 0
    for index in range(num_entities):
        brand = _BRANDS[index % len(_BRANDS)]
        model = f"{brand[:2]}{index}"
        series = f"series{index % series_vocab}"
        words = [f"w{rng.randrange(word_vocab)}" for _ in range(3)]
        name = f"{model} {series}"
        profile = EntityProfile(
            profile_id=next_id, original_id=f"scale-a-{index}", source_id=0
        )
        next_id += 1
        profile.add("name", name)
        profile.add("description", " ".join(words))
        profile.add("price", f"{rng.uniform(20, 2000):.2f}")
        yield profile, None
        if rng.random() >= match_rate:
            continue
        perturbed = [
            _typo(token, rng) if rng.random() < typo_rate else token
            for token in name.split()
        ]
        kept = [word for word in words if rng.random() > 0.3]
        counterpart = EntityProfile(
            profile_id=next_id, original_id=f"scale-b-{index}", source_id=1
        )
        next_id += 1
        counterpart.add("title", " ".join(perturbed))
        counterpart.add("short_descr", " ".join(kept))
        counterpart.add("list_price", f"{rng.uniform(20, 2000):.2f}")
        yield counterpart, (profile.profile_id, counterpart.profile_id)


def generate_scalability_products(
    num_entities: int,
    seed: int = 42,
    match_rate: float = 0.9,
    typo_rate: float = 0.1,
) -> DatasetPair:
    """Materialise :func:`iter_scalability_products` into a dataset pair."""
    collection = ProfileCollection()
    ground_truth = GroundTruth()
    stream = iter_scalability_products(
        num_entities, seed=seed, match_rate=match_rate, typo_rate=typo_rate
    )
    for profile, match in stream:
        collection.add(profile)
        if match is not None:
            ground_truth.add(*match)
    return DatasetPair(
        profiles=collection, ground_truth=ground_truth, name="scalability-products"
    )


def generate_abt_buy_like(config: SyntheticConfig | None = None) -> DatasetPair:
    """Generate a clean-clean product dataset in the style of Abt-Buy.

    Source 0 ("abt") uses attributes ``name``, ``description``, ``price``;
    source 1 ("buy") uses ``title``, ``short_descr``, ``list_price`` and
    ``manufacturer``.  Matching records share most name tokens (with typos)
    and part of the description; prices differ by a small jitter.

    Built on the lazy :func:`iter_abt_buy_like` stream — one profile lives
    between generation and collection insert, never the per-source lists the
    eager two-phase loop used to hold.
    """
    config = config or SyntheticConfig()
    collection = ProfileCollection()
    ground_truth = GroundTruth()
    for profile, match in iter_abt_buy_like(config):
        collection.add(profile)
        if match is not None:
            ground_truth.add(*match)
    return DatasetPair(profiles=collection, ground_truth=ground_truth, name="abt-buy-like")


def generate_bibliographic(
    num_entities: int = 200, *, overlap: float = 0.7, seed: int = 7
) -> DatasetPair:
    """Generate a clean-clean bibliographic dataset (citation matching).

    Source 0 looks like a digital library export (``title``, ``authors``,
    ``venue``, ``year``); source 1 looks like a reference string collection
    (``reference``, ``author_list``, ``published``).
    """
    rng = random.Random(seed)
    source0: list[EntityProfile] = []
    source1: list[EntityProfile] = []
    matches: list[tuple[int, int]] = []

    for index in range(num_entities):
        title_words = rng.sample(_TITLE_WORDS, k=rng.randint(4, 8))
        title = " ".join(title_words)
        authors = [
            f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"
            for _ in range(rng.randint(1, 4))
        ]
        venue = rng.choice(_VENUES)
        year = rng.randint(1995, 2019)

        in_both = rng.random() < overlap
        in_first = in_both or index % 2 == 0

        position0 = None
        if in_first:
            profile = EntityProfile(
                profile_id=len(source0), original_id=f"dblp-{index}", source_id=0
            )
            profile.add("title", title)
            profile.add("authors", ", ".join(authors))
            profile.add("venue", venue)
            profile.add("year", str(year))
            position0 = len(source0)
            source0.append(profile)

        if in_both or not in_first:
            # Reference-style record: abbreviated authors, title with a word
            # dropped, venue merged into a single string.
            abbreviated = [
                f"{name.split()[0][0]}. {name.split()[1]}" for name in authors
            ]
            reference_title_words = [
                w for w in title_words if rng.random() > 0.15
            ] or title_words
            profile = EntityProfile(
                profile_id=len(source1), original_id=f"ref-{index}", source_id=1
            )
            profile.add("reference", " ".join(reference_title_words))
            profile.add("author_list", "; ".join(abbreviated))
            profile.add("published", f"{venue} {year}")
            position1 = len(source1)
            source1.append(profile)
            if in_first and position0 is not None:
                matches.append((position0, position1))

    collection = ProfileCollection()
    for profile in source0:
        collection.add(profile)
    offset = len(source0)
    for profile in source1:
        collection.add(
            EntityProfile(
                profile_id=profile.profile_id + offset,
                original_id=profile.original_id,
                source_id=1,
                attributes=list(profile.attributes),
            )
        )
    ground_truth = GroundTruth((a, b + offset) for a, b in matches)
    return DatasetPair(
        profiles=collection, ground_truth=ground_truth, name="bibliographic"
    )


def generate_dirty_persons(
    num_entities: int = 150,
    *,
    max_duplicates: int = 4,
    seed: int = 11,
) -> DatasetPair:
    """Generate a dirty-ER person dataset: one source with duplicate clusters.

    Each real-world person appears between 1 and ``max_duplicates`` times with
    perturbed names, missing attributes and reformatted phone numbers.  The
    ground truth contains every within-cluster pair, so transitivity matters
    for the clusterer.
    """
    rng = random.Random(seed)
    collection = ProfileCollection()
    ground_truth = GroundTruth()
    next_id = 0

    for index in range(num_entities):
        first = rng.choice(_FIRST_NAMES)
        last = rng.choice(_LAST_NAMES)
        city = rng.choice(_CITIES)
        year = rng.randint(1950, 2000)
        phone = f"{rng.randint(200, 999)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}"
        copies = rng.randint(1, max_duplicates)
        ids_of_entity: list[int] = []
        for copy in range(copies):
            profile = EntityProfile(
                profile_id=next_id, original_id=f"person-{index}-{copy}", source_id=0
            )
            name = f"{first} {last}"
            if copy > 0 and rng.random() < 0.3:
                name = f"{first[0]} {last}"
            if copy > 0 and rng.random() < 0.2:
                name = _typo(name, rng)
            profile.add("full_name", name)
            if rng.random() > 0.2:
                profile.add("city", city)
            if rng.random() > 0.3:
                profile.add("birth_year", str(year))
            if rng.random() > 0.4:
                profile.add("phone", phone if copy == 0 else phone.replace("-", " "))
            collection.add(profile)
            ids_of_entity.append(next_id)
            next_id += 1
        for i, a in enumerate(ids_of_entity):
            for b in ids_of_entity[i + 1 :]:
                ground_truth.add(a, b)

    return DatasetPair(
        profiles=collection, ground_truth=ground_truth, name="dirty-persons"
    )


def toy_bibliographic_dataset() -> DatasetPair:
    """The 4-profile toy example of the paper's Figure 1.

    Source 1 holds two structured records (p1 = Blast, p2 = SparkER); source 2
    holds two BibTeX-like records (p3 = SparkER citation, p4 = Blast chapter).
    The true matches are (p1, p4) and (p2, p3): figure 1 labels the sources so
    that profile p3 is the SparkER entry and p4 the Blast entry.
    """
    collection = ProfileCollection()

    p1 = EntityProfile(profile_id=0, original_id="p1", source_id=0)
    p1.add("Name", "Blast")
    p1.add("Authors", "G. Simonini")
    p1.add("Abstract", "how to improve meta-blocking")
    collection.add(p1)

    p2 = EntityProfile(profile_id=1, original_id="p2", source_id=0)
    p2.add("Name", "SparkER")
    p2.add("Authors", "L. Gagliardelli")
    p2.add("Abstract", "Simonini et al proposed blocking")
    collection.add(p2)

    p3 = EntityProfile(profile_id=2, original_id="p3", source_id=1)
    p3.add("title", "SparkER: parallel Blast")
    p3.add("author", "Luca Gagliardelli")
    p3.add("year", "2017")
    collection.add(p3)

    p4 = EntityProfile(profile_id=3, original_id="p4", source_id=1)
    p4.add("title", "Blast: loosely schema blocking")
    p4.add("author", "Giovanni Simonini")
    p4.add("year", "2016")
    collection.add(p4)

    ground_truth = GroundTruth([(0, 3), (1, 2)])
    return DatasetPair(profiles=collection, ground_truth=ground_truth, name="figure1-toy")
