"""Entity profiles: the basic data unit of SparkER.

A *profile* is a set of ``(attribute, value)`` pairs plus an identifier and a
*source id*.  The source id distinguishes the two datasets of a clean-clean ER
task (e.g. Abt vs Buy); for dirty ER (a single dataset with internal
duplicates) every profile carries the same source id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import DataError
from repro.utils.tokenize import tokenize


@dataclass(frozen=True)
class KeyValue:
    """One attribute/value pair of a profile."""

    attribute: str
    value: str

    def __post_init__(self) -> None:
        if not self.attribute:
            raise DataError("KeyValue.attribute must be a non-empty string")


@dataclass
class EntityProfile:
    """A record to be resolved.

    Parameters
    ----------
    profile_id:
        Unique integer id within the whole input (across both sources).
    original_id:
        The identifier of the record in the original dataset (string).
    source_id:
        0 for the first dataset, 1 for the second; always 0 in dirty ER.
    attributes:
        The ``(attribute, value)`` pairs of the record.
    """

    profile_id: int
    original_id: str = ""
    source_id: int = 0
    attributes: list[KeyValue] = field(default_factory=list)

    def add(self, attribute: str, value: object) -> None:
        """Append an attribute/value pair (empty / None values are skipped)."""
        if value is None:
            return
        text = str(value).strip()
        if not text:
            return
        self.attributes.append(KeyValue(attribute, text))

    def attribute_names(self) -> set[str]:
        """Return the set of attribute names present in this profile."""
        return {kv.attribute for kv in self.attributes}

    def values_of(self, attribute: str) -> list[str]:
        """Return every value of ``attribute`` in this profile."""
        return [kv.value for kv in self.attributes if kv.attribute == attribute]

    def value_of(self, attribute: str, default: str = "") -> str:
        """Return the first value of ``attribute``, or ``default``."""
        values = self.values_of(attribute)
        return values[0] if values else default

    def items(self) -> Iterator[tuple[str, str]]:
        """Iterate over ``(attribute, value)`` pairs."""
        for kv in self.attributes:
            yield kv.attribute, kv.value

    def tokens(self, *, min_length: int = 1, remove_stopwords: bool = False) -> set[str]:
        """Return the schema-agnostic bag of tokens of this profile (as a set)."""
        result: set[str] = set()
        for _attribute, value in self.items():
            result.update(
                tokenize(value, min_length=min_length, remove_stopwords=remove_stopwords)
            )
        return result

    def attribute_tokens(
        self, *, min_length: int = 1, remove_stopwords: bool = False
    ) -> list[tuple[str, str]]:
        """Return ``(attribute, token)`` pairs, preserving token provenance."""
        pairs: list[tuple[str, str]] = []
        for attribute, value in self.items():
            for token in tokenize(
                value, min_length=min_length, remove_stopwords=remove_stopwords
            ):
                pairs.append((attribute, token))
        return pairs

    def text(self) -> str:
        """Concatenate every value (used by bag-of-words similarity)."""
        return " ".join(kv.value for kv in self.attributes)

    def as_dict(self) -> dict[str, list[str]]:
        """Return attribute → list of values."""
        result: dict[str, list[str]] = {}
        for kv in self.attributes:
            result.setdefault(kv.attribute, []).append(kv.value)
        return result

    def __len__(self) -> int:
        return len(self.attributes)

    def __repr__(self) -> str:
        preview = ", ".join(f"{kv.attribute}={kv.value!r}" for kv in self.attributes[:3])
        if len(self.attributes) > 3:
            preview += ", ..."
        return (
            f"EntityProfile(id={self.profile_id}, source={self.source_id}, "
            f"original={self.original_id!r}, {preview})"
        )
