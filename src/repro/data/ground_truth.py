"""Ground truth: the set of true matching profile pairs.

Pairs are stored in canonical order (smaller id first) so lookups are
order-insensitive.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


def canonical_pair(a: int, b: int) -> tuple[int, int]:
    """Return the pair ordered so the smaller profile id comes first."""
    return (a, b) if a <= b else (b, a)


class GroundTruth:
    """The set of true matches of an ER task."""

    def __init__(self, pairs: Iterable[tuple[int, int]] = ()) -> None:
        self._pairs: set[tuple[int, int]] = set()
        for a, b in pairs:
            self.add(a, b)

    def add(self, a: int, b: int) -> None:
        """Register that profiles ``a`` and ``b`` refer to the same entity."""
        if a == b:
            return
        self._pairs.add(canonical_pair(a, b))

    def __contains__(self, pair: tuple[int, int]) -> bool:
        a, b = pair
        return canonical_pair(a, b) in self._pairs

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def pairs(self) -> set[tuple[int, int]]:
        """Return a copy of the canonical pair set."""
        return set(self._pairs)

    def profile_ids(self) -> set[int]:
        """Return every profile id that appears in at least one true match."""
        ids: set[int] = set()
        for a, b in self._pairs:
            ids.add(a)
            ids.add(b)
        return ids

    def restricted_to(self, profile_ids: Iterable[int]) -> "GroundTruth":
        """Return the subset of pairs whose both endpoints are in ``profile_ids``."""
        wanted = set(profile_ids)
        return GroundTruth(
            (a, b) for a, b in self._pairs if a in wanted and b in wanted
        )

    def missing_from(self, candidate_pairs: Iterable[tuple[int, int]]) -> set[tuple[int, int]]:
        """Return the true matches not present in ``candidate_pairs``.

        These are the "false positives" of the demo's debugging view — the
        paper uses that term for ground-truth pairs *lost* during blocking.
        """
        candidates = {canonical_pair(a, b) for a, b in candidate_pairs}
        return self._pairs - candidates

    def __repr__(self) -> str:
        return f"GroundTruth(matches={len(self._pairs)})"
