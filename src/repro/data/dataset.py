"""Profile collections and clean-clean dataset pairs."""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.data.profile import EntityProfile
from repro.exceptions import DataError


class ProfileCollection:
    """An ordered collection of :class:`EntityProfile` with id-based lookup.

    The collection may hold profiles from one source (dirty ER) or from two
    sources (clean-clean ER, e.g. Abt + Buy); :attr:`separator_id` marks the
    last profile id of the first source in the latter case, mirroring how the
    original SparkER passes the two datasets to its Spark jobs.
    """

    def __init__(self, profiles: Iterable[EntityProfile] = ()) -> None:
        self._profiles: list[EntityProfile] = []
        self._by_id: dict[int, EntityProfile] = {}
        for profile in profiles:
            self.add(profile)

    def add(self, profile: EntityProfile) -> None:
        """Append a profile; ids must be unique."""
        if profile.profile_id in self._by_id:
            raise DataError(f"duplicate profile id {profile.profile_id}")
        self._profiles.append(profile)
        self._by_id[profile.profile_id] = profile

    def __iter__(self) -> Iterator[EntityProfile]:
        return iter(self._profiles)

    def __len__(self) -> int:
        return len(self._profiles)

    def __getitem__(self, profile_id: int) -> EntityProfile:
        try:
            return self._by_id[profile_id]
        except KeyError as exc:
            raise DataError(f"unknown profile id {profile_id}") from exc

    def __contains__(self, profile_id: int) -> bool:
        return profile_id in self._by_id

    def ids(self) -> list[int]:
        """Return every profile id in insertion order."""
        return [p.profile_id for p in self._profiles]

    def by_source(self, source_id: int) -> list[EntityProfile]:
        """Return the profiles of one source."""
        return [p for p in self._profiles if p.source_id == source_id]

    def sources(self) -> set[int]:
        """Return the distinct source ids present."""
        return {p.source_id for p in self._profiles}

    @property
    def is_clean_clean(self) -> bool:
        """True when profiles come from exactly two sources."""
        return len(self.sources()) == 2

    @property
    def separator_id(self) -> int | None:
        """Largest profile id of source 0 when clean-clean, else ``None``."""
        if not self.is_clean_clean:
            return None
        return max(p.profile_id for p in self._profiles if p.source_id == 0)

    def attribute_names(self) -> set[str]:
        """Union of attribute names across all profiles."""
        names: set[str] = set()
        for profile in self._profiles:
            names.update(profile.attribute_names())
        return names

    def attribute_names_by_source(self) -> dict[int, set[str]]:
        """Attribute names grouped by source id."""
        result: dict[int, set[str]] = {}
        for profile in self._profiles:
            result.setdefault(profile.source_id, set()).update(profile.attribute_names())
        return result

    def max_comparisons(self) -> int:
        """Number of comparisons of the naive all-pairs solution.

        For clean-clean ER only cross-source pairs count; for dirty ER every
        unordered pair counts.
        """
        if self.is_clean_clean:
            n0 = len(self.by_source(0))
            n1 = len(self.by_source(1))
            return n0 * n1
        n = len(self._profiles)
        return n * (n - 1) // 2

    def subset(self, profile_ids: Iterable[int]) -> "ProfileCollection":
        """Return a new collection containing only ``profile_ids`` (order kept)."""
        wanted = set(profile_ids)
        return ProfileCollection(p for p in self._profiles if p.profile_id in wanted)

    def __repr__(self) -> str:
        return (
            f"ProfileCollection(n={len(self)}, sources={sorted(self.sources())}, "
            f"attributes={len(self.attribute_names())})"
        )


@dataclass
class DatasetPair:
    """A clean-clean ER task: two sources merged into one collection + ground truth."""

    profiles: ProfileCollection
    ground_truth: "GroundTruth"
    name: str = "dataset"

    def __post_init__(self) -> None:
        from repro.data.ground_truth import GroundTruth  # local import to avoid cycle

        if not isinstance(self.ground_truth, GroundTruth):
            raise DataError("ground_truth must be a GroundTruth instance")

    def summary(self) -> dict[str, object]:
        """Basic statistics of the dataset."""
        return {
            "name": self.name,
            "profiles": len(self.profiles),
            "source0": len(self.profiles.by_source(0)),
            "source1": len(self.profiles.by_source(1)),
            "attributes": len(self.profiles.attribute_names()),
            "matches": len(self.ground_truth),
            "max_comparisons": self.profiles.max_comparisons(),
        }


def merge_sources(
    source0: Iterable[EntityProfile], source1: Iterable[EntityProfile]
) -> ProfileCollection:
    """Merge two sources into one collection, re-assigning contiguous ids.

    Profiles of source 0 get ids ``0..n0-1`` and source 1 gets ``n0..n0+n1-1``,
    which is the id layout the original SparkER uses (a single id space with a
    separator id).
    """
    collection = ProfileCollection()
    next_id = 0
    for source_id, source in ((0, source0), (1, source1)):
        for profile in source:
            collection.add(
                EntityProfile(
                    profile_id=next_id,
                    original_id=profile.original_id or str(profile.profile_id),
                    source_id=source_id,
                    attributes=list(profile.attributes),
                )
            )
            next_id += 1
    return collection
