"""Loaders: build profile collections from CSV / JSON / JSON-lines files.

The original SparkER loads CSV and JSON datasets into ``EntityProfile`` RDDs;
these loaders produce the same profile structure driver-side.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Iterable
from pathlib import Path

from repro.data.dataset import ProfileCollection
from repro.data.ground_truth import GroundTruth
from repro.data.profile import EntityProfile
from repro.exceptions import DataError


def _profiles_from_records(
    records: Iterable[dict[str, object]],
    *,
    id_field: str | None,
    source_id: int,
    start_id: int,
) -> list[EntityProfile]:
    profiles: list[EntityProfile] = []
    next_id = start_id
    for record in records:
        original_id = str(record.get(id_field, next_id)) if id_field else str(next_id)
        profile = EntityProfile(
            profile_id=next_id, original_id=original_id, source_id=source_id
        )
        for attribute, value in record.items():
            if id_field is not None and attribute == id_field:
                continue
            if isinstance(value, (list, tuple)):
                for item in value:
                    profile.add(attribute, item)
            else:
                profile.add(attribute, value)
        profiles.append(profile)
        next_id += 1
    return profiles


def load_csv(
    path: str | Path,
    *,
    id_field: str | None = None,
    source_id: int = 0,
    start_id: int = 0,
    delimiter: str = ",",
) -> list[EntityProfile]:
    """Load a CSV file into a list of profiles (header row required)."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"no such file: {path}")
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        records = [dict(row) for row in reader]
    return _profiles_from_records(
        records, id_field=id_field, source_id=source_id, start_id=start_id
    )


def load_json(
    path: str | Path,
    *,
    id_field: str | None = None,
    source_id: int = 0,
    start_id: int = 0,
) -> list[EntityProfile]:
    """Load a JSON file containing a list of flat objects."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"no such file: {path}")
    with path.open(encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise DataError("JSON dataset must be a list of objects")
    return _profiles_from_records(
        data, id_field=id_field, source_id=source_id, start_id=start_id
    )


def load_jsonl(
    path: str | Path,
    *,
    id_field: str | None = None,
    source_id: int = 0,
    start_id: int = 0,
) -> list[EntityProfile]:
    """Load a JSON-lines file (one object per line)."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"no such file: {path}")
    records = []
    with path.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return _profiles_from_records(
        records, id_field=id_field, source_id=source_id, start_id=start_id
    )


def load_ground_truth_csv(
    path: str | Path,
    id_mapping_source0: dict[str, int],
    id_mapping_source1: dict[str, int],
    *,
    left_field: str = "id1",
    right_field: str = "id2",
    delimiter: str = ",",
) -> GroundTruth:
    """Load a ground-truth CSV of original-id pairs and map them to profile ids."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"no such file: {path}")
    ground_truth = GroundTruth()
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        for row in reader:
            left = id_mapping_source0.get(str(row[left_field]))
            right = id_mapping_source1.get(str(row[right_field]))
            if left is None or right is None:
                continue
            ground_truth.add(left, right)
    return ground_truth


def collection_from_records(
    records0: Iterable[dict[str, object]],
    records1: Iterable[dict[str, object]] | None = None,
    *,
    id_field: str | None = None,
) -> ProfileCollection:
    """Build a collection directly from in-memory record dictionaries."""
    profiles0 = _profiles_from_records(
        records0, id_field=id_field, source_id=0, start_id=0
    )
    collection = ProfileCollection(profiles0)
    if records1 is not None:
        profiles1 = _profiles_from_records(
            records1, id_field=id_field, source_id=1, start_id=len(profiles0)
        )
        for profile in profiles1:
            collection.add(profile)
    return collection
