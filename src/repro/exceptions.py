"""Exception hierarchy for the SparkER reproduction.

All library-specific errors derive from :class:`SparkERError` so callers can
catch a single base class at the pipeline boundary.
"""


class SparkERError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(SparkERError):
    """An invalid or inconsistent configuration value was supplied."""


class DataError(SparkERError):
    """Input data could not be parsed or violates the data-model contract."""


class EngineError(SparkERError):
    """The mini dataflow engine was used incorrectly (e.g. bad partitioning)."""


class BlockingError(SparkERError):
    """A blocking stage received invalid input or produced an invalid state."""


class MetaBlockingError(SparkERError):
    """Meta-blocking failed (unknown weighting scheme, bad graph, ...)."""


class MatchingError(SparkERError):
    """Entity matching failed (unknown similarity function, untrained model)."""


class ClusteringError(SparkERError):
    """Entity clustering failed (unknown algorithm, inconsistent graph)."""


class EvaluationError(SparkERError):
    """Evaluation was requested without the required ground truth."""


class PipelineError(SparkERError):
    """A stage-graph pipeline was composed or executed incorrectly."""


class PipelineValidationError(PipelineError):
    """A pipeline spec failed composition-time validation (missing or
    mistyped artifacts, unknown stages, bad parameters)."""
