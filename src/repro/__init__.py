"""SparkER reproduction: scalable entity resolution.

This package reproduces the system described in *SparkER: Scaling Entity
Resolution in Spark* (EDBT 2019).  It provides:

* ``repro.engine`` -- a miniature MapReduce/Spark-like dataflow engine used as
  the execution substrate for all parallel algorithms,
* ``repro.data`` -- the entity-profile data model, loaders and synthetic
  dataset generators,
* ``repro.blocking`` -- schema-agnostic token blocking, loose-schema (BLAST)
  blocking, block purging and block filtering,
* ``repro.looseschema`` -- the loose-schema generator (LSH attribute
  partitioning + attribute-cluster entropy),
* ``repro.metablocking`` -- the blocking graph, edge-weighting schemes,
  pruning strategies, BLAST entropy re-weighting and the broadcast-join style
  parallel meta-blocking,
* ``repro.matching`` -- similarity functions, threshold / rule matchers and a
  supervised pair classifier,
* ``repro.clustering`` -- entity clustering algorithms (connected components
  and alternatives),
* ``repro.evaluation`` -- blocking and matching quality metrics,
* ``repro.sampling`` -- the process-debugging sampler,
* ``repro.pipeline`` -- the composable stage-graph API: typed stages in a
  string-keyed registry, declarative dict/JSON specs
  (``Pipeline.from_spec``), a validated runner with per-stage metrics and
  checkpoint/resume,
* ``repro.core`` -- the SparkER pipeline modules (Blocker, Entity Matcher,
  Entity Clusterer), the end-to-end :class:`~repro.core.sparker.SparkER`
  facade (a thin wrapper over the canonical pipeline spec) and the
  process-debugging session.
"""

from repro.version import __version__
from repro.data.profile import EntityProfile, KeyValue
from repro.data.dataset import ProfileCollection
from repro.data.ground_truth import GroundTruth
from repro.core.config import SparkERConfig, BlockerConfig, MatcherConfig, ClustererConfig
from repro.core.sparker import SparkER, SparkERResult
from repro.core.blocker import Blocker, BlockerReport
from repro.core.entity_matcher import EntityMatcher
from repro.core.entity_clusterer import EntityClusterer
from repro.core.debugging import DebugSession
from repro.pipeline import Pipeline, PipelineResult, Stage

__all__ = [
    "Pipeline",
    "PipelineResult",
    "Stage",
    "__version__",
    "EntityProfile",
    "KeyValue",
    "ProfileCollection",
    "GroundTruth",
    "SparkERConfig",
    "BlockerConfig",
    "MatcherConfig",
    "ClustererConfig",
    "SparkER",
    "SparkERResult",
    "Blocker",
    "BlockerReport",
    "EntityMatcher",
    "EntityClusterer",
    "DebugSession",
]
