"""Debug sampling for the supervised (process-debugging) mode."""

from repro.sampling.debug_sampler import DebugSampler, DebugSample

__all__ = ["DebugSampler", "DebugSample"]
