"""The process-debugging sampler (Section 3 of the paper).

Iterating configurations on the full input would be too slow, so the demo
samples the data following the strategy of Magellan: pick K random seed
profiles, then for each seed pick k/2 profiles that *could* be a match (share
many tokens with the seed) and k/2 random profiles.  K and k are user
parameters trading sample size for fidelity.

The sample keeps the two sources of a clean-clean task: likely matches for a
seed are drawn from the *other* source, so the sample still contains both
matching and non-matching cross-source pairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.dataset import ProfileCollection
from repro.data.ground_truth import GroundTruth
from repro.exceptions import DataError


@dataclass
class DebugSample:
    """The sampled profiles plus the restriction of the ground truth to them."""

    profiles: ProfileCollection
    ground_truth: GroundTruth
    seed_ids: list[int]

    def summary(self) -> dict[str, int]:
        """Size summary of the sample."""
        return {
            "profiles": len(self.profiles),
            "seeds": len(self.seed_ids),
            "matches_in_sample": len(self.ground_truth),
        }


class DebugSampler:
    """Samples a representative subset for interactive configuration tuning.

    Parameters
    ----------
    num_seeds:
        K — number of random seed profiles.
    per_seed:
        k — profiles added per seed (k/2 likely matches + k/2 random).
    seed:
        Random seed for reproducibility.
    """

    def __init__(self, num_seeds: int = 20, per_seed: int = 10, seed: int = 23) -> None:
        if num_seeds <= 0 or per_seed <= 0:
            raise DataError("num_seeds and per_seed must be positive")
        self.num_seeds = num_seeds
        self.per_seed = per_seed
        self.seed = seed

    def sample(
        self,
        profiles: ProfileCollection,
        ground_truth: GroundTruth | None = None,
    ) -> DebugSample:
        """Draw the debug sample from ``profiles``.

        When a ground truth is given it is restricted to the sampled profiles
        so the debug session can still report recall / precision.
        """
        rng = random.Random(self.seed)
        all_profiles = list(profiles)
        if not all_profiles:
            raise DataError("cannot sample an empty profile collection")

        token_index = {p.profile_id: p.tokens(remove_stopwords=True) for p in all_profiles}
        by_source: dict[int, list[int]] = {}
        for profile in all_profiles:
            by_source.setdefault(profile.source_id, []).append(profile.profile_id)

        num_seeds = min(self.num_seeds, len(all_profiles))
        seed_ids = rng.sample([p.profile_id for p in all_profiles], num_seeds)
        selected: set[int] = set(seed_ids)

        half = max(1, self.per_seed // 2)
        for seed_id in seed_ids:
            seed_profile = profiles[seed_id]
            seed_tokens = token_index[seed_id]
            # Candidate pool: other source when clean-clean, everyone otherwise.
            if profiles.is_clean_clean:
                other_source = 1 - seed_profile.source_id
                pool = by_source.get(other_source, [])
            else:
                pool = [pid for pid in token_index if pid != seed_id]

            # k/2 likely matches: profiles sharing the most tokens with the seed.
            overlaps = sorted(
                pool,
                key=lambda pid: (-len(seed_tokens & token_index[pid]), pid),
            )
            selected.update(overlaps[:half])

            # k/2 random profiles from the same pool.
            if pool:
                selected.update(rng.sample(pool, min(half, len(pool))))

        sampled_profiles = profiles.subset(selected)
        sampled_truth = (
            ground_truth.restricted_to(selected) if ground_truth is not None else GroundTruth()
        )
        return DebugSample(
            profiles=sampled_profiles,
            ground_truth=sampled_truth,
            seed_ids=sorted(seed_ids),
        )
