"""Blocking quality statistics.

The demo GUI (Figure 6) shows, after every configuration change: the number of
blocks, the number of candidate pairs, recall (pairs completeness), precision
(pairs quality) and the list of lost ground-truth pairs.  This module computes
all of them from a block collection and the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocking.block import BlockCollection
from repro.data.ground_truth import GroundTruth


@dataclass
class BlockingStats:
    """Quality statistics of one blocking collection."""

    num_blocks: int
    num_candidate_pairs: int
    total_comparisons: int
    recall: float
    precision: float
    lost_pairs: set[tuple[int, int]]
    reduction_ratio: float

    @property
    def f1(self) -> float:
        """Harmonic mean of blocking recall and precision."""
        if self.recall + self.precision == 0:
            return 0.0
        return 2 * self.recall * self.precision / (self.recall + self.precision)

    def as_dict(self) -> dict[str, object]:
        """Flat dictionary used by reports and benchmarks."""
        return {
            "blocks": self.num_blocks,
            "candidate_pairs": self.num_candidate_pairs,
            "total_comparisons": self.total_comparisons,
            "recall": round(self.recall, 4),
            "precision": round(self.precision, 6),
            "f1": round(self.f1, 6),
            "lost_pairs": len(self.lost_pairs),
            "reduction_ratio": round(self.reduction_ratio, 4),
        }


def compute_blocking_stats(
    blocks: BlockCollection,
    ground_truth: GroundTruth,
    *,
    max_comparisons: int | None = None,
) -> BlockingStats:
    """Compute recall / precision / reduction statistics of ``blocks``.

    Parameters
    ----------
    blocks:
        The blocking collection to evaluate.
    ground_truth:
        The true matches.
    max_comparisons:
        Number of comparisons of the naive all-pairs solution, used for the
        reduction ratio; when omitted the reduction ratio is reported as 0.
    """
    candidate_pairs = blocks.distinct_comparisons()
    true_pairs = ground_truth.pairs()
    found = candidate_pairs & true_pairs

    recall = len(found) / len(true_pairs) if true_pairs else 1.0
    precision = len(found) / len(candidate_pairs) if candidate_pairs else 0.0
    reduction = 0.0
    if max_comparisons:
        reduction = 1.0 - (len(candidate_pairs) / max_comparisons)

    return BlockingStats(
        num_blocks=len(blocks),
        num_candidate_pairs=len(candidate_pairs),
        total_comparisons=blocks.total_comparisons(),
        recall=recall,
        precision=precision,
        lost_pairs=true_pairs - candidate_pairs,
        reduction_ratio=reduction,
    )


def block_stage_metrics(
    blocks: BlockCollection,
    ground_truth: GroundTruth | None = None,
    *,
    max_comparisons: int | None = None,
) -> dict[str, object]:
    """The per-stage metric dict recorded after every block-level stage.

    Full quality statistics when a ground truth is available, plain counts
    otherwise.  Both the legacy :class:`repro.core.blocker.Blocker` and the
    pipeline stage adapters record exactly this dict, which is what keeps
    the facade-vs-pipeline reports byte-identical.
    """
    if ground_truth is not None:
        return compute_blocking_stats(
            blocks, ground_truth, max_comparisons=max_comparisons
        ).as_dict()
    return {
        "blocks": len(blocks),
        "candidate_pairs": len(blocks.distinct_comparisons()),
        "total_comparisons": blocks.total_comparisons(),
    }


def candidate_pair_stats(
    candidate_pairs: set[tuple[int, int]],
    ground_truth: GroundTruth,
    *,
    max_comparisons: int | None = None,
) -> dict[str, object]:
    """Same statistics but for an explicit candidate-pair set (post meta-blocking)."""
    true_pairs = ground_truth.pairs()
    found = candidate_pairs & true_pairs
    recall = len(found) / len(true_pairs) if true_pairs else 1.0
    precision = len(found) / len(candidate_pairs) if candidate_pairs else 0.0
    reduction = 0.0
    if max_comparisons:
        reduction = 1.0 - (len(candidate_pairs) / max_comparisons)
    return {
        "candidate_pairs": len(candidate_pairs),
        "recall": round(recall, 4),
        "precision": round(precision, 6),
        "lost_pairs": len(true_pairs - candidate_pairs),
        "reduction_ratio": round(reduction, 4),
    }
