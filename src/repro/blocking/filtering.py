"""Block filtering: remove each profile from its largest blocks.

Per the paper: *Block Filtering removes each profile from the largest 20 % of
the blocks in which it appears, increasing precision without affecting
recall.*  Formally each profile is retained only in the smallest
``ceil(ratio * |blocks(p)|)`` blocks it appears in (with ``ratio = 0.8``),
following Papadakis et al.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.blocking.block import Block, BlockCollection
from repro.exceptions import BlockingError


@dataclass
class BlockFiltering:
    """Keep each profile only in its smallest blocks.

    Parameters
    ----------
    ratio:
        Fraction of each profile's blocks to *keep* (0.8 keeps the smallest
        80 %, i.e. removes the profile from its largest 20 % of blocks, the
        paper's default).
    """

    ratio: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise BlockingError("ratio must be in (0, 1]")

    def filter(self, blocks: BlockCollection) -> BlockCollection:
        """Return a new collection where oversized memberships are dropped."""
        # Order blocks by comparison cardinality (ascending = "smallest first").
        order = sorted(
            range(len(blocks)), key=lambda i: (blocks[i].num_comparisons(), blocks[i].size)
        )
        rank = {block_index: position for position, block_index in enumerate(order)}

        # For each profile, rank the blocks it appears in by size and keep the
        # smallest ceil(ratio * count).
        profile_blocks = blocks.profile_index()
        keep: dict[int, set[int]] = {}
        for profile_id, block_indices in profile_blocks.items():
            limit = max(1, math.ceil(self.ratio * len(block_indices)))
            ranked = sorted(block_indices, key=lambda i: rank[i])
            keep[profile_id] = set(ranked[:limit])

        filtered = BlockCollection(clean_clean=blocks.clean_clean)
        for block_index, block in enumerate(blocks):
            new_block = Block(
                key=block.key, entropy=block.entropy, clean_clean=block.is_clean_clean
            )
            for profile_id in block.profiles_source0:
                if block_index in keep.get(profile_id, ()):
                    new_block.profiles_source0.add(profile_id)
            for profile_id in block.profiles_source1:
                if block_index in keep.get(profile_id, ()):
                    new_block.profiles_source1.add(profile_id)
            if new_block.is_valid():
                filtered.add(new_block)
        return filtered

    def __call__(self, blocks: BlockCollection) -> BlockCollection:
        return self.filter(blocks)
