"""Block purging: drop the oversized blocks produced by frequent keys.

The paper (Section 2.1) uses the simple rule of Papadakis et al.: *discard all
blocks that contain more than half of the profiles in the collection* — these
correspond to highly frequent blocking keys such as stop-words.  A
comparison-based variant (purge the largest blocks until the marginal cost per
retained comparison stops improving) is provided as well, since the demo lets
the user change the aggressiveness of the purging step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocking.block import BlockCollection
from repro.exceptions import BlockingError


@dataclass
class BlockPurging:
    """Remove the largest blocks of a collection.

    Parameters
    ----------
    max_profile_fraction:
        A block containing more than this fraction of all profiles is purged
        (paper default: 0.5).
    smoothing:
        Optional comparison-based purging factor; when not ``None`` the
        collection is additionally purged with the size-based heuristic of
        Papadakis et al. (purge block sizes whose cumulative comparison
        cardinality grows faster than ``smoothing`` × cumulative block
        cardinality).
    """

    max_profile_fraction: float = 0.5
    smoothing: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.max_profile_fraction <= 1.0:
            raise BlockingError("max_profile_fraction must be in (0, 1]")
        if self.smoothing is not None and self.smoothing <= 0:
            raise BlockingError("smoothing must be positive when given")

    def purge(self, blocks: BlockCollection, num_profiles: int | None = None) -> BlockCollection:
        """Return a new collection without the purged blocks."""
        if num_profiles is None:
            num_profiles = len(blocks.profile_ids())
        if num_profiles == 0:
            return BlockCollection(clean_clean=blocks.clean_clean)

        threshold = self.max_profile_fraction * num_profiles
        kept = [block for block in blocks if block.size <= threshold]

        if self.smoothing is not None:
            kept = self._comparison_based_purge(kept)

        return BlockCollection(kept, clean_clean=blocks.clean_clean)

    # -------------------------------------------------------------- internals
    def _comparison_based_purge(self, blocks: list) -> list:
        """Size-based purging: find the block-size cutoff where comparisons explode.

        Blocks are ordered by ascending comparison cardinality; the cutoff is
        the largest block cardinality at which the ratio (cumulative
        comparisons / cumulative block sizes) still increases by at most the
        smoothing factor.  This reproduces the spirit of Papadakis' comparison
        based purging without requiring duplicate annotations.
        """
        if not blocks:
            return blocks
        ordered = sorted(blocks, key=lambda b: b.num_comparisons())
        cumulative_comparisons = 0
        cumulative_size = 0
        best_ratio = float("inf")
        cutoff = ordered[-1].num_comparisons()
        for block in ordered:
            cumulative_comparisons += block.num_comparisons()
            cumulative_size += block.size
            if cumulative_size == 0:
                continue
            ratio = cumulative_comparisons / cumulative_size
            if ratio <= best_ratio * (self.smoothing or 1.0):
                best_ratio = min(best_ratio, ratio)
                cutoff = block.num_comparisons()
        return [b for b in ordered if b.num_comparisons() <= cutoff]

    def __call__(self, blocks: BlockCollection, num_profiles: int | None = None) -> BlockCollection:
        return self.purge(blocks, num_profiles)
