"""Base class of blocking strategies."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.blocking.block import BlockCollection
from repro.data.dataset import ProfileCollection


class Blocker(ABC):
    """A blocking strategy maps a profile collection to a block collection."""

    @abstractmethod
    def block(self, profiles: ProfileCollection) -> BlockCollection:
        """Build the block collection for ``profiles``."""

    def __call__(self, profiles: ProfileCollection) -> BlockCollection:
        return self.block(profiles)
