"""Loose-schema (BLAST) token blocking.

The blocking key is the token concatenated with the id of the attribute
cluster the token's attribute belongs to (Figure 2(b) of the paper): the token
``simonini`` occurring in an *author* attribute becomes ``simonini_1`` while
the same token in a *title/abstract* attribute becomes ``simonini_2``, so the
two usages no longer collide in one block.

Blocks inherit the Shannon entropy of their attribute cluster, which the BLAST
meta-blocking later uses to re-weight edges.
"""

from __future__ import annotations

from repro.blocking.base import Blocker
from repro.blocking.block import Block, BlockCollection
from repro.data.dataset import ProfileCollection
from repro.engine.context import EngineContext
from repro.looseschema.attribute_partitioning import AttributePartitioning


class LooseSchemaTokenBlocking(Blocker):
    """Token blocking with attribute-cluster-qualified keys.

    Parameters
    ----------
    partitioning:
        The attribute partitioning produced by the loose-schema generator.
        Attributes not present fall into the blob cluster.
    cluster_entropies:
        Optional mapping cluster id → Shannon entropy; blocks inherit the
        entropy of the cluster of their key.
    min_token_length / remove_stopwords:
        Tokenization options (same semantics as :class:`TokenBlocking`).
    engine:
        Optional engine context for the distributed code path.
    """

    def __init__(
        self,
        partitioning: AttributePartitioning,
        *,
        cluster_entropies: dict[int, float] | None = None,
        min_token_length: int = 1,
        remove_stopwords: bool = False,
        engine: EngineContext | None = None,
    ) -> None:
        self.partitioning = partitioning
        self.cluster_entropies = cluster_entropies or {}
        self.min_token_length = min_token_length
        self.remove_stopwords = remove_stopwords
        self.engine = engine

    # ------------------------------------------------------------------ public
    def block(self, profiles: ProfileCollection) -> BlockCollection:
        """Build one block per ``token_clusterId`` key."""
        if self.engine is not None:
            return self._block_distributed(profiles)
        return self._block_local(profiles)

    def key_for(self, token: str, attribute: str) -> str:
        """Return the loose-schema blocking key of ``token`` in ``attribute``."""
        cluster_id = self.partitioning.cluster_of(attribute)
        return f"{token}_{cluster_id}"

    # ----------------------------------------------------------------- helpers
    def _entropy_of_key(self, key: str) -> float:
        cluster_id = int(key.rsplit("_", 1)[1])
        return self.cluster_entropies.get(cluster_id, 1.0)

    def _build_collection(
        self,
        grouped: dict[str, list[tuple[int, int]]],
        clean_clean: bool,
    ) -> BlockCollection:
        collection = BlockCollection(clean_clean=clean_clean)
        for key in sorted(grouped):
            block = Block(
                key=key, entropy=self._entropy_of_key(key), clean_clean=clean_clean
            )
            for profile_id, source_id in grouped[key]:
                if clean_clean and source_id == 1:
                    block.profiles_source1.add(profile_id)
                else:
                    block.profiles_source0.add(profile_id)
            if block.is_valid():
                collection.add(block)
        return collection

    def _keyed_tokens(self, profiles: ProfileCollection) -> list[tuple[str, tuple[int, int]]]:
        pairs: list[tuple[str, tuple[int, int]]] = []
        for profile in profiles:
            seen: set[str] = set()
            for attribute, token in profile.attribute_tokens(
                min_length=self.min_token_length,
                remove_stopwords=self.remove_stopwords,
            ):
                key = self.key_for(token, attribute)
                if key in seen:
                    continue
                seen.add(key)
                pairs.append((key, (profile.profile_id, profile.source_id)))
        return pairs

    def _block_local(self, profiles: ProfileCollection) -> BlockCollection:
        grouped: dict[str, list[tuple[int, int]]] = {}
        for key, member in self._keyed_tokens(profiles):
            grouped.setdefault(key, []).append(member)
        return self._build_collection(grouped, profiles.is_clean_clean)

    def _block_distributed(self, profiles: ProfileCollection) -> BlockCollection:
        """Loose-schema blocking as a flatMap + groupByKey job on the engine.

        The attribute → cluster mapping is shipped to tasks as a broadcast
        variable, exactly as SparkER broadcasts the loose-schema information.
        """
        assert self.engine is not None
        mapping_broadcast = self.engine.broadcast(self.partitioning.attribute_to_cluster())
        blob_id = self.partitioning.blob_cluster_id
        min_length = self.min_token_length
        remove_stopwords = self.remove_stopwords

        def keyed(profile) -> list[tuple[str, tuple[int, int]]]:
            mapping = mapping_broadcast.value
            seen: set[str] = set()
            result = []
            for attribute, token in profile.attribute_tokens(
                min_length=min_length, remove_stopwords=remove_stopwords
            ):
                cluster_id = mapping.get(attribute, blob_id)
                key = f"{token}_{cluster_id}"
                if key in seen:
                    continue
                seen.add(key)
                result.append((key, (profile.profile_id, profile.source_id)))
            return result

        profile_rdd = self.engine.parallelize(list(profiles))
        grouped_rdd = profile_rdd.flatMap(keyed, name="loose_schema.tokens").groupByKey()
        grouped = {key: members for key, members in grouped_rdd.collect()}
        return self._build_collection(grouped, profiles.is_clean_clean)
