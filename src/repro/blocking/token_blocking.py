"""Schema-agnostic token blocking (Papadakis et al.).

Every token appearing in any attribute value of a profile is a blocking key;
schema information is ignored.  The result is the high-recall / low-precision
blocking collection the paper's introduction describes (Figure 1(b)).

Two code paths are provided: a driver-side one and a distributed one expressed
on the mini engine (``flatMap`` tokens → ``groupByKey`` by token), which is
the structure SparkER runs on Spark.
"""

from __future__ import annotations

from repro.blocking.base import Blocker
from repro.blocking.block import Block, BlockCollection
from repro.data.dataset import ProfileCollection
from repro.engine.context import EngineContext


class TokenBlocking(Blocker):
    """Schema-agnostic token blocking.

    Parameters
    ----------
    min_token_length:
        Tokens shorter than this are ignored (1 keeps everything).
    remove_stopwords:
        Drop English stop-words at tokenization time.
    engine:
        Optional :class:`EngineContext`; when given, the blocking runs as a
        distributed job on the mini engine, otherwise driver-side.
    """

    def __init__(
        self,
        *,
        min_token_length: int = 1,
        remove_stopwords: bool = False,
        engine: EngineContext | None = None,
    ) -> None:
        self.min_token_length = min_token_length
        self.remove_stopwords = remove_stopwords
        self.engine = engine

    # ------------------------------------------------------------------ public
    def block(self, profiles: ProfileCollection) -> BlockCollection:
        """Build one block per token that appears in at least one profile."""
        if self.engine is not None:
            return self._block_distributed(profiles)
        return self._block_local(profiles)

    # ----------------------------------------------------------------- helpers
    def _profile_tokens(self, profiles: ProfileCollection) -> list[tuple[str, int, int]]:
        """Return (token, profile_id, source_id) triples for all profiles."""
        triples: list[tuple[str, int, int]] = []
        for profile in profiles:
            for token in profile.tokens(
                min_length=self.min_token_length,
                remove_stopwords=self.remove_stopwords,
            ):
                triples.append((token, profile.profile_id, profile.source_id))
        return triples

    def _build_collection(
        self,
        grouped: dict[str, list[tuple[int, int]]],
        clean_clean: bool,
    ) -> BlockCollection:
        collection = BlockCollection(clean_clean=clean_clean)
        for key in sorted(grouped):
            members = grouped[key]
            block = Block(key=key, clean_clean=clean_clean)
            for profile_id, source_id in members:
                if clean_clean and source_id == 1:
                    block.profiles_source1.add(profile_id)
                else:
                    block.profiles_source0.add(profile_id)
            if block.is_valid():
                collection.add(block)
        return collection

    def _block_local(self, profiles: ProfileCollection) -> BlockCollection:
        grouped: dict[str, list[tuple[int, int]]] = {}
        for token, profile_id, source_id in self._profile_tokens(profiles):
            grouped.setdefault(token, []).append((profile_id, source_id))
        return self._build_collection(grouped, profiles.is_clean_clean)

    def _block_distributed(self, profiles: ProfileCollection) -> BlockCollection:
        """Token blocking as a flatMap + groupByKey job on the mini engine."""
        assert self.engine is not None
        min_length = self.min_token_length
        remove_stopwords = self.remove_stopwords

        profile_rdd = self.engine.parallelize(list(profiles))
        token_pairs = profile_rdd.flatMap(
            lambda p: [
                (token, (p.profile_id, p.source_id))
                for token in p.tokens(
                    min_length=min_length, remove_stopwords=remove_stopwords
                )
            ],
            name="token_blocking.tokens",
        )
        grouped_rdd = token_pairs.groupByKey()
        grouped = {key: members for key, members in grouped_rdd.collect()}
        return self._build_collection(grouped, profiles.is_clean_clean)
