"""Blocking: token blocking, loose-schema blocking, purging and filtering."""

from repro.blocking.block import Block, BlockCollection
from repro.blocking.base import Blocker as BlockingStrategy
from repro.blocking.token_blocking import TokenBlocking
from repro.blocking.loose_schema_blocking import LooseSchemaTokenBlocking
from repro.blocking.purging import BlockPurging
from repro.blocking.filtering import BlockFiltering
from repro.blocking.stats import BlockingStats, compute_blocking_stats

__all__ = [
    "Block",
    "BlockCollection",
    "BlockingStrategy",
    "TokenBlocking",
    "LooseSchemaTokenBlocking",
    "BlockPurging",
    "BlockFiltering",
    "BlockingStats",
    "compute_blocking_stats",
]
