"""Blocks and block collections.

A *block* is the set of profiles sharing one blocking key.  For clean-clean ER
a block keeps the two sources separate (only cross-source comparisons count);
for dirty ER all profiles sit in a single group and every unordered pair is a
comparison.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.exceptions import BlockingError


@dataclass
class Block:
    """One block of a blocking collection.

    Parameters
    ----------
    key:
        The blocking key (a token, or ``token_clusterId`` for loose-schema
        blocking).
    profiles_source0 / profiles_source1:
        Profile ids per source.  Dirty-ER blocks keep every profile in
        ``profiles_source0`` and leave ``profiles_source1`` empty.
    entropy:
        Entropy of the attribute cluster the key belongs to (BLAST); 1.0 when
        entropy is not used.
    """

    key: str
    profiles_source0: set[int] = field(default_factory=set)
    profiles_source1: set[int] = field(default_factory=set)
    entropy: float = 1.0
    clean_clean: bool = False

    @property
    def is_clean_clean(self) -> bool:
        """True when the block belongs to a clean-clean (two sources) task.

        A block created for a clean-clean collection stays clean-clean even if
        a later stage (e.g. block filtering) removes every profile of one
        source: it must not start producing within-source comparisons.
        """
        return self.clean_clean or bool(self.profiles_source1)

    @property
    def size(self) -> int:
        """Number of profiles in the block."""
        return len(self.profiles_source0) + len(self.profiles_source1)

    def all_profiles(self) -> set[int]:
        """All profile ids in the block (both sources)."""
        return self.profiles_source0 | self.profiles_source1

    def num_comparisons(self) -> int:
        """Number of distinct comparisons induced by this block."""
        if self.is_clean_clean:
            return len(self.profiles_source0) * len(self.profiles_source1)
        n = len(self.profiles_source0)
        return n * (n - 1) // 2

    def comparisons(self) -> Iterator[tuple[int, int]]:
        """Yield every comparison (canonically ordered pair) of this block."""
        if self.is_clean_clean:
            for a in self.profiles_source0:
                for b in self.profiles_source1:
                    yield (a, b) if a <= b else (b, a)
        else:
            ordered = sorted(self.profiles_source0)
            for i, a in enumerate(ordered):
                for b in ordered[i + 1 :]:
                    yield a, b

    def contains(self, profile_id: int) -> bool:
        """True if ``profile_id`` belongs to this block."""
        return profile_id in self.profiles_source0 or profile_id in self.profiles_source1

    def remove(self, profile_id: int) -> None:
        """Remove ``profile_id`` from the block (no-op if absent)."""
        self.profiles_source0.discard(profile_id)
        self.profiles_source1.discard(profile_id)

    def is_valid(self) -> bool:
        """A block is valid only if it induces at least one comparison."""
        return self.num_comparisons() > 0

    def __repr__(self) -> str:
        return (
            f"Block(key={self.key!r}, s0={len(self.profiles_source0)}, "
            f"s1={len(self.profiles_source1)}, entropy={self.entropy:.3f})"
        )


class BlockCollection:
    """An ordered collection of blocks with profile-level indexing."""

    def __init__(self, blocks: Iterable[Block] = (), *, clean_clean: bool = False) -> None:
        self.clean_clean = clean_clean
        self._blocks: list[Block] = []
        for block in blocks:
            self.add(block)

    def add(self, block: Block) -> None:
        """Append a block to the collection."""
        if not isinstance(block, Block):
            raise BlockingError("only Block instances can be added")
        self._blocks.append(block)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __getitem__(self, index: int) -> Block:
        return self._blocks[index]

    @property
    def blocks(self) -> list[Block]:
        """The underlying block list."""
        return self._blocks

    def total_comparisons(self) -> int:
        """Sum of per-block comparisons (pairs may be counted more than once)."""
        return sum(block.num_comparisons() for block in self._blocks)

    def distinct_comparisons(self) -> set[tuple[int, int]]:
        """The set of distinct candidate pairs across all blocks."""
        pairs: set[tuple[int, int]] = set()
        for block in self._blocks:
            pairs.update(block.comparisons())
        return pairs

    def profile_index(self) -> dict[int, list[int]]:
        """Map each profile id to the indices of the blocks that contain it."""
        index: dict[int, list[int]] = {}
        for block_index, block in enumerate(self._blocks):
            for profile_id in block.all_profiles():
                index.setdefault(profile_id, []).append(block_index)
        return index

    def profile_ids(self) -> set[int]:
        """All profile ids appearing in at least one block."""
        ids: set[int] = set()
        for block in self._blocks:
            ids.update(block.all_profiles())
        return ids

    def purge_invalid(self) -> "BlockCollection":
        """Return a new collection without blocks that induce no comparison."""
        return BlockCollection(
            (b for b in self._blocks if b.is_valid()), clean_clean=self.clean_clean
        )

    def sorted_by_size(self, descending: bool = True) -> list[Block]:
        """Blocks sorted by number of comparisons."""
        return sorted(
            self._blocks, key=lambda b: b.num_comparisons(), reverse=descending
        )

    def __repr__(self) -> str:
        return (
            f"BlockCollection(blocks={len(self._blocks)}, "
            f"comparisons={self.total_comparisons()}, clean_clean={self.clean_clean})"
        )
