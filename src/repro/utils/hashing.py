"""Deterministic hashing utilities and a MinHash implementation.

Python's built-in ``hash`` is randomised per process (PYTHONHASHSEED), which
would make partitioning and LSH non-deterministic across runs.  Everything in
this module is seeded and reproducible.
"""

from __future__ import annotations

import hashlib
import struct
from collections.abc import Iterable
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

# numpy is imported lazily (MinHash is its only consumer here): the hashing
# helpers below — and everything that transitively imports them, like the
# engine's hash partitioner and the meta-blocking layer — must stay usable
# in the no-numpy environment of the pure-python kernel backend.

# A large Mersenne prime used for the universal hash family of MinHash.
_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


def stable_hash(value: object, seed: int = 0) -> int:
    """Return a deterministic 64-bit hash of ``value``.

    Unlike ``hash()``, this is stable across interpreter runs, which makes
    hash partitioning in the engine reproducible.
    """
    data = repr(value).encode("utf-8", errors="replace")
    digest = hashlib.blake2b(data, digest_size=8, salt=struct.pack("<q", seed)).digest()
    return int.from_bytes(digest, "little")


def stable_token_hash(token: str, seed: int = 0) -> int:
    """Hash a token string to a 32-bit integer (used by MinHash shingling)."""
    return stable_hash(token, seed) & _MAX_HASH


class MinHasher:
    """MinHash signatures for sets of string tokens.

    The loose-schema generator uses MinHash + banding LSH to find similar
    attributes by the Jaccard similarity of their value-token sets.

    Parameters
    ----------
    num_perm:
        Number of hash permutations (signature length).
    seed:
        Seed of the universal hash family; fixed for reproducibility.
    """

    def __init__(self, num_perm: int = 128, seed: int = 1) -> None:
        import numpy as np

        if num_perm <= 0:
            raise ValueError("num_perm must be positive")
        self.num_perm = num_perm
        self.seed = seed
        rng = np.random.default_rng(seed)
        # Universal hashing: h_i(x) = (a_i * x + b_i) mod p mod 2^32
        self._a = rng.integers(1, _MERSENNE_PRIME, size=num_perm, dtype=np.uint64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=num_perm, dtype=np.uint64)

    def signature(self, tokens: Iterable[str]) -> "np.ndarray":
        """Return the MinHash signature (uint32 array) of a token set."""
        import numpy as np

        token_list = list(tokens)
        if not token_list:
            return np.full(self.num_perm, _MAX_HASH, dtype=np.uint64)
        hashes = np.array(
            [stable_token_hash(t, self.seed) for t in token_list], dtype=np.uint64
        )
        # (num_perm, num_tokens) matrix of permuted hashes; take per-row minima.
        permuted = (
            self._a[:, None] * hashes[None, :] + self._b[:, None]
        ) % _MERSENNE_PRIME
        return (permuted % (_MAX_HASH + 1)).min(axis=1)

    @staticmethod
    def estimate_jaccard(sig_a: "np.ndarray", sig_b: "np.ndarray") -> float:
        """Estimate Jaccard similarity from two signatures."""
        import numpy as np

        if sig_a.shape != sig_b.shape:
            raise ValueError("signatures must have the same length")
        if sig_a.size == 0:
            return 0.0
        return float(np.count_nonzero(sig_a == sig_b)) / float(sig_a.size)

    def bands(self, signature: "np.ndarray", num_bands: int) -> list[int]:
        """Split ``signature`` into bands and hash each band to a bucket id.

        Two sets landing in the same bucket for at least one band become LSH
        candidates.  ``num_bands`` must divide ``num_perm``.
        """
        if num_bands <= 0:
            raise ValueError("num_bands must be positive")
        if self.num_perm % num_bands != 0:
            raise ValueError("num_bands must divide num_perm")
        rows = self.num_perm // num_bands
        buckets = []
        for band_index in range(num_bands):
            band = signature[band_index * rows : (band_index + 1) * rows]
            buckets.append(stable_hash((band_index, band.tobytes()), self.seed))
        return buckets
