"""Lightweight timing helpers used by the pipeline and the benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Timer:
    """Context-manager stopwatch.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start


@dataclass
class StageTimings:
    """Accumulates named stage durations for a pipeline run."""

    durations: dict[str, float] = field(default_factory=dict)

    def record(self, stage: str, seconds: float) -> None:
        """Add ``seconds`` to the accumulated duration of ``stage``."""
        self.durations[stage] = self.durations.get(stage, 0.0) + seconds

    def time(self, stage: str) -> "_StageContext":
        """Return a context manager that records elapsed time under ``stage``."""
        return _StageContext(self, stage)

    @property
    def total(self) -> float:
        """Total recorded time across all stages."""
        return sum(self.durations.values())

    def as_dict(self) -> dict[str, float]:
        """Return a copy of the stage → seconds mapping."""
        return dict(self.durations)


class _StageContext:
    """Context manager produced by :meth:`StageTimings.time`."""

    def __init__(self, timings: StageTimings, stage: str) -> None:
        self._timings = timings
        self._stage = stage
        self._timer = Timer()

    def __enter__(self) -> "_StageContext":
        self._timer.__enter__()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.__exit__(*exc_info)
        self._timings.record(self._stage, self._timer.elapsed)
