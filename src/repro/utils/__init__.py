"""Shared utilities: tokenization, text normalisation, hashing, timing."""

from repro.utils.tokenize import tokenize, tokenize_profile, ngrams, character_ngrams
from repro.utils.text import normalize_text, strip_punctuation, STOPWORDS
from repro.utils.hashing import stable_hash, MinHasher
from repro.utils.timers import Timer, StageTimings

__all__ = [
    "tokenize",
    "tokenize_profile",
    "ngrams",
    "character_ngrams",
    "normalize_text",
    "strip_punctuation",
    "STOPWORDS",
    "stable_hash",
    "MinHasher",
    "Timer",
    "StageTimings",
]
