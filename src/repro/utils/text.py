"""Text normalisation helpers shared by blocking and matching.

All blocking keys and similarity computations in the SparkER pipeline operate
on normalised text: lower-cased, punctuation stripped, whitespace collapsed.
Keeping the normalisation in one module guarantees that the blocker and the
matcher see the same token universe.
"""

from __future__ import annotations

import re
import unicodedata

# A small English stop-word list.  Schema-agnostic token blocking on product
# and bibliographic data generates huge blocks for these words; block purging
# removes most of them anyway, but dropping them at tokenization time keeps
# the toy examples readable and mirrors common ER practice.
STOPWORDS: frozenset[str] = frozenset(
    {
        "a", "an", "and", "are", "as", "at", "be", "by", "for", "from",
        "has", "he", "in", "is", "it", "its", "of", "on", "or", "that",
        "the", "to", "was", "were", "will", "with",
    }
)

_PUNCTUATION_RE = re.compile(r"[^\w\s]", re.UNICODE)
_WHITESPACE_RE = re.compile(r"\s+")


def strip_accents(text: str) -> str:
    """Return ``text`` with combining accent marks removed."""
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def strip_punctuation(text: str) -> str:
    """Replace every punctuation character in ``text`` with a space."""
    return _PUNCTUATION_RE.sub(" ", text)


def normalize_text(text: str) -> str:
    """Normalise ``text`` for blocking and similarity computation.

    The normalisation lower-cases, removes accents, replaces punctuation with
    spaces and collapses runs of whitespace.  It is idempotent.
    """
    if not text:
        return ""
    lowered = strip_accents(str(text)).lower()
    cleaned = strip_punctuation(lowered)
    return _WHITESPACE_RE.sub(" ", cleaned).strip()


def is_numeric_token(token: str) -> bool:
    """Return True if ``token`` looks like a plain number (int or decimal)."""
    if not token:
        return False
    return re.fullmatch(r"\d+(\.\d+)?", token) is not None
