"""Tokenization used by blocking, the loose-schema generator and matching.

The schema-agnostic model of SparkER treats every profile as a bag of tokens;
tokens are produced here so that every stage of the pipeline shares one
definition of "token".
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.utils.text import STOPWORDS, normalize_text


def tokenize(
    text: str,
    *,
    min_length: int = 1,
    remove_stopwords: bool = False,
) -> list[str]:
    """Split ``text`` into normalised word tokens.

    Parameters
    ----------
    text:
        Raw attribute value.
    min_length:
        Tokens shorter than this many characters are dropped.
    remove_stopwords:
        When True, tokens in :data:`repro.utils.text.STOPWORDS` are dropped.
    """
    normalized = normalize_text(text)
    if not normalized:
        return []
    tokens = normalized.split(" ")
    result = []
    for token in tokens:
        if len(token) < min_length:
            continue
        if remove_stopwords and token in STOPWORDS:
            continue
        result.append(token)
    return result


def token_set(text: str, **kwargs) -> set[str]:
    """Return the set of distinct tokens of ``text`` (see :func:`tokenize`)."""
    return set(tokenize(text, **kwargs))


def tokenize_profile(
    attribute_values: Iterable[tuple[str, str]],
    *,
    min_length: int = 1,
    remove_stopwords: bool = False,
) -> list[tuple[str, str]]:
    """Tokenize every ``(attribute, value)`` pair of a profile.

    Returns a list of ``(attribute, token)`` pairs preserving which attribute
    each token came from, which the loose-schema blocker needs in order to map
    tokens to attribute-cluster ids.
    """
    pairs: list[tuple[str, str]] = []
    for attribute, value in attribute_values:
        for token in tokenize(value, min_length=min_length, remove_stopwords=remove_stopwords):
            pairs.append((attribute, token))
    return pairs


def ngrams(tokens: list[str], n: int) -> Iterator[tuple[str, ...]]:
    """Yield the word ``n``-grams of a token list."""
    if n <= 0:
        raise ValueError("n must be positive")
    for i in range(len(tokens) - n + 1):
        yield tuple(tokens[i : i + n])


def character_ngrams(text: str, n: int = 3, *, pad: bool = False) -> list[str]:
    """Return the character ``n``-grams of the normalised ``text``.

    Used by the LSH attribute-partitioning step and by q-gram similarity.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    normalized = normalize_text(text)
    if pad:
        padding = "#" * (n - 1)
        normalized = padding + normalized + padding
    if len(normalized) < n:
        return [normalized] if normalized else []
    return [normalized[i : i + n] for i in range(len(normalized) - n + 1)]
