"""Logging configuration for the SparkER reproduction.

The library never configures the root logger; applications opt in via
:func:`configure_logging`.
"""

from __future__ import annotations

import logging

LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a child logger of the package logger."""
    if name:
        return logging.getLogger(f"{LOGGER_NAME}.{name}")
    return logging.getLogger(LOGGER_NAME)


def configure_logging(level: int = logging.INFO) -> None:
    """Attach a simple stream handler to the package logger (idempotent)."""
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
