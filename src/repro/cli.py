"""Command-line interface.

The original SparkER ships a GUI for non-expert users; in a library-only
reproduction the equivalent is a small CLI that runs the unsupervised pipeline
on CSV/JSON inputs (or the built-in synthetic datasets), prints the per-stage
report and optionally writes the resolved entities and the tuned configuration
to JSON files.

Usage examples::

    # end-to-end run on the synthetic Abt-Buy stand-in
    python -m repro.cli run --synthetic abt-buy --entities 200

    # same run on the mini engine with a 4-worker process pool
    python -m repro.cli run --synthetic abt-buy --entities 200 \
        --executor process --workers 4

    # clean-clean ER on two CSV files with a ground-truth mapping
    python -m repro.cli run --source0 abt.csv --source1 buy.csv \
        --ground-truth mapping.csv --id-field id --output entities.json

    # declarative runs: a JSON stage-graph spec instead of the fixed wiring
    python -m repro.cli run --spec examples/spec_abt_buy.json
    python -m repro.cli run --synthetic abt-buy --output-config resolved.json
    python -m repro.cli run --spec resolved.json        # reproduces the run

    # checkpoint a long run, then resume it after an interruption
    python -m repro.cli run --synthetic abt-buy --checkpoint ckpt/
    python -m repro.cli resume --checkpoint ckpt/

    # list every registered pipeline stage and its parameters
    python -m repro.cli stages

    # inspect the attribute partitioning at a given threshold
    python -m repro.cli partition --synthetic abt-buy --threshold 0.3
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.config import SparkERConfig
from repro.core.sparker import SparkER
from repro.data.dataset import DatasetPair, ProfileCollection
from repro.data.ground_truth import GroundTruth
from repro.data.loaders import load_csv, load_json
from repro.data.synthetic import (
    SyntheticConfig,
    generate_abt_buy_like,
    generate_bibliographic,
    generate_dirty_persons,
    generate_scalability_products,
)
from repro.evaluation.report import format_table
from repro.exceptions import PipelineValidationError, SparkERError
from repro.looseschema.attribute_partitioning import AttributePartitioner
from repro.looseschema.entropy import EntropyExtractor
from repro.pipeline import Pipeline, PipelineResult, stage_catalog

class _TrackExplicit(argparse.Action):
    """Store the value and remember that the user set this flag explicitly.

    Needed to arbitrate between argparse defaults and a --spec file's
    dataset section: an explicit CLI value must win over the spec, but the
    spec must win over a mere parser default.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        setattr(namespace, self.dest, values)
        explicit = getattr(namespace, "_explicit", None)
        if explicit is None:
            explicit = set()
            setattr(namespace, "_explicit", explicit)
        explicit.add(self.dest)


def _is_explicit(args: argparse.Namespace, dest: str) -> bool:
    return dest in getattr(args, "_explicit", set())


_SYNTHETIC_GENERATORS = {
    "abt-buy": lambda n, seed: generate_abt_buy_like(SyntheticConfig(num_entities=n, seed=seed)),
    "bibliographic": lambda n, seed: generate_bibliographic(num_entities=n, seed=seed),
    "dirty-persons": lambda n, seed: generate_dirty_persons(num_entities=n, seed=seed),
    # Scale-proportional vocabularies: block sizes stay bounded as n grows,
    # so this is the one safe to point at 10^4+ entities (see BENCHMARKS.md).
    "scalability": lambda n, seed: generate_scalability_products(n, seed=seed),
}


def _load_file(path: Path, *, id_field: str | None, source_id: int, start_id: int):
    if path.suffix.lower() == ".json":
        return load_json(path, id_field=id_field, source_id=source_id, start_id=start_id)
    return load_csv(path, id_field=id_field, source_id=source_id, start_id=start_id)


def _load_dataset(args: argparse.Namespace) -> DatasetPair:
    """Build the dataset from --synthetic or from --source0/--source1 files."""
    if args.synthetic:
        generator = _SYNTHETIC_GENERATORS[args.synthetic]
        return generator(args.entities, args.seed)

    if not args.source0:
        raise SparkERError("either --synthetic or --source0 must be given")

    profiles0 = _load_file(
        Path(args.source0), id_field=args.id_field, source_id=0, start_id=0
    )
    collection = ProfileCollection(profiles0)
    id_map0 = {p.original_id: p.profile_id for p in profiles0}
    id_map1: dict[str, int] = {}
    if args.source1:
        profiles1 = _load_file(
            Path(args.source1), id_field=args.id_field, source_id=1, start_id=len(profiles0)
        )
        for profile in profiles1:
            collection.add(profile)
        id_map1 = {p.original_id: p.profile_id for p in profiles1}

    ground_truth = GroundTruth()
    if args.ground_truth:
        import csv as _csv

        with Path(args.ground_truth).open(newline="", encoding="utf-8") as handle:
            reader = _csv.DictReader(handle)
            fields = reader.fieldnames or []
            if len(fields) < 2:
                raise SparkERError("the ground-truth CSV needs two id columns")
            right_map = id_map1 or id_map0
            for row in reader:
                left = id_map0.get(str(row[fields[0]]).strip())
                right = right_map.get(str(row[fields[1]]).strip())
                if left is not None and right is not None:
                    ground_truth.add(left, right)

    name = Path(args.source0).stem
    return DatasetPair(profiles=collection, ground_truth=ground_truth, name=name)


def _config_from_args(args: argparse.Namespace) -> SparkERConfig:
    config = (
        SparkERConfig.schema_agnostic()
        if getattr(args, "schema_agnostic", False)
        else SparkERConfig.unsupervised_default()
    )
    if getattr(args, "threshold", None) is not None:
        config.blocker.attribute_threshold = args.threshold
    if getattr(args, "match_threshold", None) is not None:
        config.matcher.threshold = args.match_threshold
    if getattr(args, "similarity", None):
        config.matcher.similarity = args.similarity
    config.validate()
    return config


def _executor_spec(args: argparse.Namespace) -> str | None:
    """Build the engine executor spec from --executor / --workers.

    ``--workers`` without ``--executor`` implies the process executor — a
    worker count for the serial executor would otherwise be silently ignored.
    """
    executor = args.executor
    if executor is None and args.workers is not None:
        executor = "process"
    if not executor:
        return None
    if args.workers is not None:
        return f"{executor}:{args.workers}"
    return executor


def _fault_policy_spec(args: argparse.Namespace) -> str | None:
    """Build the engine fault-policy spec from --task-retries / --task-timeout.

    Only meaningful with the process executor (the serial executor has no
    worker pool to recover); the spec rides in the engine section either way
    so provenance round-trips.
    """
    parts = []
    if getattr(args, "task_retries", None) is not None:
        if args.task_retries < 0:
            raise SparkERError("--task-retries must be >= 0")
        parts.append(f"retries={args.task_retries}")
    if getattr(args, "task_timeout", None) is not None:
        parts.append(f"timeout={args.task_timeout:g}")
    return ",".join(parts) or None


def _dataset_section(args: argparse.Namespace) -> dict[str, object]:
    """The dataset provenance recorded by --output-config (spec round-trip)."""
    if args.synthetic:
        return {"synthetic": args.synthetic, "entities": args.entities, "seed": args.seed}
    section: dict[str, object] = {"source0": args.source0}
    if args.source1:
        section["source1"] = args.source1
    if args.ground_truth:
        section["ground_truth"] = args.ground_truth
    if args.id_field:
        section["id_field"] = args.id_field
    return section


def _apply_spec_dataset(args: argparse.Namespace, spec: dict[str, object]) -> None:
    """Fill dataset args from the spec's dataset section when none were given."""
    dataset = spec.get("dataset")
    if not isinstance(dataset, dict) or args.synthetic or args.source0:
        return
    args.synthetic = dataset.get("synthetic")
    if args.synthetic is not None and args.synthetic not in _SYNTHETIC_GENERATORS:
        raise SparkERError(f"spec dataset names unknown synthetic {args.synthetic!r}")
    if not _is_explicit(args, "entities"):
        args.entities = int(dataset.get("entities", args.entities))
    if not _is_explicit(args, "seed"):
        args.seed = int(dataset.get("seed", args.seed))
    args.source0 = dataset.get("source0") or args.source0
    args.source1 = dataset.get("source1") or args.source1
    args.ground_truth = dataset.get("ground_truth") or args.ground_truth
    args.id_field = dataset.get("id_field") or args.id_field


def _build_run_spec(args: argparse.Namespace) -> dict[str, object]:
    """The stage-graph spec of this invocation: --spec file or canonical."""
    if args.spec:
        spec = json.loads(Path(args.spec).read_text(encoding="utf-8"))
        if not isinstance(spec, dict):
            raise SparkERError(f"spec file {args.spec} must hold a JSON object")
        _apply_spec_dataset(args, spec)
        # CLI engine flags override the spec's engine section.
        if args.engine or args.executor or args.workers is not None:
            engine_section = dict(spec.get("engine") or {})
            engine_section["enabled"] = True
            executor = _executor_spec(args)
            if executor is not None:
                engine_section["executor"] = executor
            spec["engine"] = engine_section
        if args.kernel_backend is not None:
            # The kernel backend rides in the engine section but does not
            # imply the engine: the sequential path selects a kernel too.
            engine_section = dict(spec.get("engine") or {})
            engine_section["kernel_backend"] = args.kernel_backend
            spec["engine"] = engine_section
        if args.buffer_backend is not None:
            # Same treatment for the CSR buffer backend: the sequential
            # meta-blocker honours it without an engine.
            engine_section = dict(spec.get("engine") or {})
            engine_section["buffer_backend"] = args.buffer_backend
            spec["engine"] = engine_section
        if args.tmp_dir is not None:
            engine_section = dict(spec.get("engine") or {})
            engine_section["tmp_dir"] = args.tmp_dir
            spec["engine"] = engine_section
        fault_policy = _fault_policy_spec(args)
        if fault_policy is not None:
            engine_section = dict(spec.get("engine") or {})
            engine_section["fault_policy"] = fault_policy
            spec["engine"] = engine_section
        if args.block_store is not None:
            # Like the fault policy, the block store rides in the engine
            # section; it only takes effect when the engine is enabled.
            engine_section = dict(spec.get("engine") or {})
            engine_section["block_store"] = args.block_store
            spec["engine"] = engine_section
        return spec
    config = _config_from_args(args)
    use_engine = args.engine or bool(args.executor) or args.workers is not None
    return SparkER.canonical_spec(
        config,
        use_engine=use_engine,
        executor=_executor_spec(args),
        kernel_backend=args.kernel_backend,
        buffer_backend=args.buffer_backend,
        tmp_dir=args.tmp_dir,
        fault_policy=_fault_policy_spec(args),
        block_store=args.block_store,
    )


def _print_result(dataset: DatasetPair | None, result: PipelineResult) -> None:
    if dataset is not None:
        print(f"dataset: {dataset.summary()}")
        print()
    print(format_table(result.report.as_rows(), title="pipeline stages"))
    print()
    print(format_table(result.stage_rows(), title="stage executions"))
    print()
    print(f"summary: {result.summary()}")


def _write_run_outputs(args: argparse.Namespace, result: PipelineResult) -> None:
    if getattr(args, "output", None):
        Path(args.output).write_text(json.dumps(result.entities, indent=2), encoding="utf-8")
        print(f"entities written to {args.output}")
    if getattr(args, "output_config", None):
        resolved = dict(result.spec)
        if hasattr(args, "synthetic"):  # the resume command carries no dataset args
            resolved["dataset"] = _dataset_section(args)
        Path(args.output_config).write_text(
            json.dumps(resolved, indent=2), encoding="utf-8"
        )
        print(f"resolved pipeline spec written to {args.output_config}")


def _command_run(args: argparse.Namespace) -> int:
    spec = _build_run_spec(args)
    dataset = _load_dataset(args)
    # Remove the dataset section before handing the spec to the pipeline —
    # it is CLI provenance, not a stage-graph concern.
    spec = {key: value for key, value in spec.items() if key != "dataset"}
    pipeline = Pipeline.from_spec(spec)
    ground_truth = dataset.ground_truth if len(dataset.ground_truth) else None
    try:
        result = pipeline.run(
            dataset.profiles,
            ground_truth,
            checkpoint=args.checkpoint,
            stop_after=args.stop_after,
        )
    finally:
        pipeline.shutdown()

    _print_result(dataset, result)
    if result.partial:
        hint = (
            f"; resume with: python -m repro.cli resume --checkpoint {args.checkpoint}"
            if args.checkpoint
            else ""
        )
        print(f"stopped after {args.stop_after!r}{hint}")
    _write_run_outputs(args, result)
    if args.save_config and not args.spec:
        config = _config_from_args(args)
        Path(args.save_config).write_text(
            json.dumps(config.as_dict(), indent=2), encoding="utf-8"
        )
        print(f"configuration written to {args.save_config}")
    return 0


def _command_resume(args: argparse.Namespace) -> int:
    result = Pipeline.resume(args.checkpoint, stop_after=args.stop_after)
    _print_result(None, result)
    _write_run_outputs(args, result)
    return 0


def _command_stages(args: argparse.Namespace) -> int:
    rows = stage_catalog()
    if args.stage:
        rows = [row for row in rows if row["stage"] == args.stage]
        if not rows:
            raise PipelineValidationError(f"unknown stage {args.stage!r}")
    print(format_table(rows, title="registered pipeline stages"))
    return 0


def _command_partition(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    partitioning = AttributePartitioner(threshold=args.threshold).partition(dataset.profiles)
    entropies = EntropyExtractor().extract(dataset.profiles, partitioning)
    print(f"attribute partitioning at threshold {args.threshold}:")
    for line in partitioning.describe():
        print("  " + line)
    print("cluster entropies:")
    for cluster_id, entropy in sorted(entropies.items()):
        print(f"  cluster {cluster_id}: {entropy:.3f}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service.app import ServiceApp, run_service
    from repro.service.collection import CollectionConfig, ServiceCollection
    from repro.service.store import CollectionStore

    defaults: dict = {}
    service_kwargs: dict = {}
    explicit_configs: list[CollectionConfig] = []
    if args.spec:
        spec = json.loads(Path(args.spec).read_text(encoding="utf-8"))
        if not isinstance(spec, dict):
            raise PipelineValidationError("service spec must be a JSON object")
        defaults = dict(spec.get("defaults", {}))
        service_kwargs = dict(spec.get("service", {}))
        known_service_keys = {
            "workers",
            "max_queue_depth",
            "max_collection_inflight",
            "request_timeout",
            "drain_timeout",
        }
        unknown = set(service_kwargs) - known_service_keys
        if unknown:
            raise PipelineValidationError(
                f"unknown service spec keys: {sorted(unknown)} "
                f"(known: {sorted(known_service_keys)})"
            )
        for entry in spec.get("collections", []):
            explicit_configs.append(CollectionConfig.from_dict(entry))
    if args.wal_fsync:
        # The flag seeds the default fsync policy; an explicit per-collection
        # wal_fsync in the spec wins.
        defaults.setdefault("wal_fsync", args.wal_fsync)
    store = CollectionStore(
        snapshot_dir=args.snapshot_dir, wal_dir=args.wal_dir, defaults=defaults
    )
    for config in explicit_configs:
        store.add(ServiceCollection(config))
    for name in args.collection or []:
        store.get_or_create(name)
    recovery = store.recover()
    for name in recovery["restored"]:
        print(f"restored collection {name!r} from snapshot", flush=True)
    for name, count in sorted(recovery["replayed"].items()):
        print(f"replayed {count} WAL record(s) into collection {name!r}", flush=True)
    if recovery["torn_truncations"]:
        print(
            f"truncated {recovery['torn_truncations']} torn WAL tail(s)",
            flush=True,
        )

    app = ServiceApp(store, host=args.host, port=args.port, **service_kwargs)

    def announce(port: int) -> None:
        # Parseable by the CI smoke driver and by `ping` wrappers.
        print(f"serving on http://{args.host}:{port}", flush=True)
        for name in store.names():
            print(f"collection: {name}", flush=True)

    async def _serve() -> None:
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_event.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await run_service(app, ready=announce, stop_event=stop_event)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal handler normally wins
        app.shutdown()
    print("service stopped", flush=True)
    return 0


def _command_ping(args: argparse.Namespace) -> int:
    import time
    import urllib.error
    import urllib.request

    url = f"http://{args.host}:{args.port}/healthz"
    deadline = time.monotonic() + args.timeout
    last_error: "Exception | None" = None
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url, timeout=1.0) as response:
                payload = json.loads(response.read().decode("utf-8"))
            if payload.get("status") == "ok":
                print(json.dumps(payload, sort_keys=True))
                return 0
            if payload.get("status") == "degraded":
                # The server answered, so don't retry — but "up" is not
                # "healthy": writes are being rejected (read-only mode), and
                # orchestration probes need to tell the two apart.
                print(json.dumps(payload, sort_keys=True))
                names = ", ".join(sorted(payload.get("degraded_collections") or ()))
                print(
                    f"error: service at {url} is up but degraded "
                    f"(read-only){': ' + names if names else ''}",
                    file=sys.stderr,
                )
                return 3
            last_error = RuntimeError(f"unexpected health payload: {payload}")
        except (urllib.error.URLError, OSError, ValueError) as error:
            last_error = error
        time.sleep(0.1)
    print(f"error: service at {url} not healthy: {last_error}", file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="SparkER reproduction: scalable entity resolution"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_dataset_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--synthetic", choices=sorted(_SYNTHETIC_GENERATORS), default=None,
                         help="use a built-in synthetic dataset instead of input files")
        sub.add_argument("--entities", type=int, default=200, action=_TrackExplicit,
                         help="number of entities for the synthetic generators")
        sub.add_argument("--seed", type=int, default=42, action=_TrackExplicit,
                         help="synthetic generator seed")
        sub.add_argument("--source0", help="first dataset (CSV or JSON)")
        sub.add_argument("--source1", help="second dataset for clean-clean ER")
        sub.add_argument("--ground-truth", help="CSV of matching original-id pairs")
        sub.add_argument("--id-field", default=None, help="name of the record-id column")

    run = subparsers.add_parser("run", help="run the full ER pipeline")
    add_dataset_arguments(run)
    run.add_argument("--schema-agnostic", action="store_true",
                     help="disable the loose-schema generator")
    run.add_argument("--threshold", type=float, default=None,
                     help="attribute-partitioning threshold")
    run.add_argument("--similarity", default=None, help="matcher similarity function")
    run.add_argument("--match-threshold", type=float, default=None,
                     help="matcher similarity threshold")
    run.add_argument("--engine", action="store_true",
                     help="run the distributed code paths on the mini engine")
    run.add_argument("--executor", choices=["serial", "process"], default=None,
                     help="engine executor for narrow stages (implies --engine); "
                          "'process' runs shippable stages on a process pool")
    run.add_argument("--workers", type=int, default=None,
                     help="process-pool worker count (implies --executor process; "
                          "default: CPU count)")
    run.add_argument("--kernel-backend", choices=["auto", "python", "numpy"],
                     default=None, dest="kernel_backend",
                     help="meta-blocking kernel backend: 'numpy' vectorises the "
                          "CSR kernel (bit-for-bit identical output), 'python' "
                          "forces the interpreted kernel, 'auto' (default) picks "
                          "numpy when importable")
    run.add_argument("--buffer-backend", choices=["ram", "memmap"],
                     default=None, dest="buffer_backend",
                     help="where the meta-blocking CSR index buffers live: "
                          "'ram' (default) keeps them in process memory, "
                          "'memmap' backs them with a file under --tmp-dir so "
                          "the OS can page the index out of core "
                          "(bit-for-bit identical output; requires numpy)")
    run.add_argument("--tmp-dir", default=None, dest="tmp_dir",
                     help="root directory for engine temp artifacts (memmap "
                          "index buffers, shuffle spill files); default: "
                          "REPRO_TMPDIR or the system temp dir")
    run.add_argument("--task-retries", type=int, default=None, dest="task_retries",
                     help="extra attempts per task before the fault policy is "
                          "exhausted (process executor only; default 0 = fail "
                          "fast, like REPRO_FAULT_POLICY unset)")
    run.add_argument("--block-store", choices=["driver", "shared-memory", "spill"],
                     default=None, dest="block_store",
                     help="how shuffle payloads travel between engine tasks: "
                          "'driver' relays them through the driver (default), "
                          "'shared-memory' publishes them as named shared-memory "
                          "segments exchanged peer-to-peer (spills per block when "
                          "shm is unavailable), 'spill' uses pickle files")
    run.add_argument("--task-timeout", type=float, default=None, dest="task_timeout",
                     help="per-task timeout in seconds; a hung worker is killed, "
                          "the pool rebuilt and the task retried (process "
                          "executor only)")
    run.add_argument("--spec", default=None,
                     help="run a declarative stage-graph spec (JSON file) instead of "
                          "the canonical SparkER wiring")
    run.add_argument("--checkpoint", default=None,
                     help="directory to checkpoint the run state into after each stage")
    run.add_argument("--stop-after", default=None, metavar="LABEL",
                     help="stop after this stage label (use with --checkpoint, then "
                          "'resume' to continue)")
    run.add_argument("--output", help="write resolved entities to this JSON file")
    run.add_argument("--output-config", default=None,
                     help="write the resolved pipeline spec (stages run + resolved "
                          "parameters + dataset) to this JSON file; feed it back "
                          "through --spec to reproduce the run")
    run.add_argument("--save-config", help="write the used configuration to this JSON file")
    run.set_defaults(handler=_command_run)

    resume = subparsers.add_parser(
        "resume", help="resume a checkpointed pipeline run"
    )
    resume.add_argument("--checkpoint", required=True,
                        help="checkpoint directory written by 'run --checkpoint'")
    resume.add_argument("--stop-after", default=None, metavar="LABEL",
                        help="stop again after this stage label")
    resume.add_argument("--output", help="write resolved entities to this JSON file")
    resume.add_argument("--output-config", default=None,
                        help="write the resolved pipeline spec to this JSON file")
    resume.set_defaults(handler=_command_resume)

    stages = subparsers.add_parser(
        "stages", help="list the registered pipeline stages and their parameters"
    )
    stages.add_argument("--stage", default=None,
                        help="show only this stage")
    stages.set_defaults(handler=_command_stages)

    partition = subparsers.add_parser(
        "partition", help="show the attribute partitioning at a threshold"
    )
    add_dataset_arguments(partition)
    partition.add_argument("--threshold", type=float, default=0.3)
    partition.set_defaults(handler=_command_partition)

    serve = subparsers.add_parser(
        "serve", help="run the ER service (async HTTP ingest/query server)"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port; 0 picks a free port and prints it")
    serve.add_argument("--spec", default=None,
                       help="service spec (JSON: {'defaults': {...}, "
                            "'collections': [{...}]}) preloading configured "
                            "collections")
    serve.add_argument("--collection", action="append", default=None,
                       metavar="NAME",
                       help="preload an empty collection with the default "
                            "config (repeatable)")
    serve.add_argument("--snapshot-dir", default=None, dest="snapshot_dir",
                       help="directory for POST .../snapshot checkpoints; "
                            "existing snapshots are restored at startup")
    serve.add_argument("--wal-dir", default=None, dest="wal_dir",
                       help="directory for per-collection write-ahead ingest "
                            "logs (<name>.wal); every ingest batch is logged "
                            "before it applies, and startup replays the log "
                            "tails over the restored snapshots so a crash "
                            "between snapshots loses nothing")
    serve.add_argument("--wal-fsync", choices=["always", "batch", "off"],
                       default=None, dest="wal_fsync",
                       help="WAL durability: 'always' fsyncs every append "
                            "(survives power loss), 'batch' (default) flushes "
                            "to the OS per append and fsyncs on snapshot/close "
                            "(survives process death), 'off' never fsyncs; "
                            "per-collection wal_fsync in --spec wins")
    serve.set_defaults(handler=_command_serve)

    ping = subparsers.add_parser(
        "ping", help="probe a running ER service's /healthz endpoint"
    )
    ping.add_argument("--host", default="127.0.0.1")
    ping.add_argument("--port", type=int, required=True)
    ping.add_argument("--timeout", type=float, default=5.0,
                      help="seconds to keep retrying before giving up")
    ping.set_defaults(handler=_command_ping)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except SparkERError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
