"""Command-line interface.

The original SparkER ships a GUI for non-expert users; in a library-only
reproduction the equivalent is a small CLI that runs the unsupervised pipeline
on CSV/JSON inputs (or the built-in synthetic datasets), prints the per-stage
report and optionally writes the resolved entities and the tuned configuration
to JSON files.

Usage examples::

    # end-to-end run on the synthetic Abt-Buy stand-in
    python -m repro.cli run --synthetic abt-buy --entities 200

    # same run on the mini engine with a 4-worker process pool
    python -m repro.cli run --synthetic abt-buy --entities 200 \
        --executor process --workers 4

    # clean-clean ER on two CSV files with a ground-truth mapping
    python -m repro.cli run --source0 abt.csv --source1 buy.csv \
        --ground-truth mapping.csv --id-field id --output entities.json

    # inspect the attribute partitioning at a given threshold
    python -m repro.cli partition --synthetic abt-buy --threshold 0.3
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.config import SparkERConfig
from repro.core.sparker import SparkER
from repro.data.dataset import DatasetPair, ProfileCollection
from repro.data.ground_truth import GroundTruth
from repro.data.loaders import load_csv, load_json
from repro.data.synthetic import (
    SyntheticConfig,
    generate_abt_buy_like,
    generate_bibliographic,
    generate_dirty_persons,
)
from repro.evaluation.report import format_table
from repro.exceptions import SparkERError
from repro.looseschema.attribute_partitioning import AttributePartitioner
from repro.looseschema.entropy import EntropyExtractor

_SYNTHETIC_GENERATORS = {
    "abt-buy": lambda n, seed: generate_abt_buy_like(SyntheticConfig(num_entities=n, seed=seed)),
    "bibliographic": lambda n, seed: generate_bibliographic(num_entities=n, seed=seed),
    "dirty-persons": lambda n, seed: generate_dirty_persons(num_entities=n, seed=seed),
}


def _load_file(path: Path, *, id_field: str | None, source_id: int, start_id: int):
    if path.suffix.lower() == ".json":
        return load_json(path, id_field=id_field, source_id=source_id, start_id=start_id)
    return load_csv(path, id_field=id_field, source_id=source_id, start_id=start_id)


def _load_dataset(args: argparse.Namespace) -> DatasetPair:
    """Build the dataset from --synthetic or from --source0/--source1 files."""
    if args.synthetic:
        generator = _SYNTHETIC_GENERATORS[args.synthetic]
        return generator(args.entities, args.seed)

    if not args.source0:
        raise SparkERError("either --synthetic or --source0 must be given")

    profiles0 = _load_file(
        Path(args.source0), id_field=args.id_field, source_id=0, start_id=0
    )
    collection = ProfileCollection(profiles0)
    id_map0 = {p.original_id: p.profile_id for p in profiles0}
    id_map1: dict[str, int] = {}
    if args.source1:
        profiles1 = _load_file(
            Path(args.source1), id_field=args.id_field, source_id=1, start_id=len(profiles0)
        )
        for profile in profiles1:
            collection.add(profile)
        id_map1 = {p.original_id: p.profile_id for p in profiles1}

    ground_truth = GroundTruth()
    if args.ground_truth:
        import csv as _csv

        with Path(args.ground_truth).open(newline="", encoding="utf-8") as handle:
            reader = _csv.DictReader(handle)
            fields = reader.fieldnames or []
            if len(fields) < 2:
                raise SparkERError("the ground-truth CSV needs two id columns")
            right_map = id_map1 or id_map0
            for row in reader:
                left = id_map0.get(str(row[fields[0]]).strip())
                right = right_map.get(str(row[fields[1]]).strip())
                if left is not None and right is not None:
                    ground_truth.add(left, right)

    name = Path(args.source0).stem
    return DatasetPair(profiles=collection, ground_truth=ground_truth, name=name)


def _config_from_args(args: argparse.Namespace) -> SparkERConfig:
    config = (
        SparkERConfig.schema_agnostic()
        if getattr(args, "schema_agnostic", False)
        else SparkERConfig.unsupervised_default()
    )
    if getattr(args, "threshold", None) is not None:
        config.blocker.attribute_threshold = args.threshold
    if getattr(args, "match_threshold", None) is not None:
        config.matcher.threshold = args.match_threshold
    if getattr(args, "similarity", None):
        config.matcher.similarity = args.similarity
    config.validate()
    return config


def _executor_spec(args: argparse.Namespace) -> str | None:
    """Build the engine executor spec from --executor / --workers.

    ``--workers`` without ``--executor`` implies the process executor — a
    worker count for the serial executor would otherwise be silently ignored.
    """
    executor = args.executor
    if executor is None and args.workers is not None:
        executor = "process"
    if not executor:
        return None
    if args.workers is not None:
        return f"{executor}:{args.workers}"
    return executor


def _command_run(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    config = _config_from_args(args)
    use_engine = args.engine or bool(args.executor) or args.workers is not None
    pipeline = SparkER(config, use_engine=use_engine, executor=_executor_spec(args))
    ground_truth = dataset.ground_truth if len(dataset.ground_truth) else None
    try:
        result = pipeline.run(dataset.profiles, ground_truth)
    finally:
        pipeline.shutdown()

    print(f"dataset: {dataset.summary()}")
    print()
    print(format_table(result.report.as_rows(), title="pipeline stages"))
    print()
    print(f"summary: {result.summary()}")

    if args.output:
        Path(args.output).write_text(json.dumps(result.entities, indent=2), encoding="utf-8")
        print(f"entities written to {args.output}")
    if args.save_config:
        Path(args.save_config).write_text(
            json.dumps(config.as_dict(), indent=2), encoding="utf-8"
        )
        print(f"configuration written to {args.save_config}")
    return 0


def _command_partition(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    partitioning = AttributePartitioner(threshold=args.threshold).partition(dataset.profiles)
    entropies = EntropyExtractor().extract(dataset.profiles, partitioning)
    print(f"attribute partitioning at threshold {args.threshold}:")
    for line in partitioning.describe():
        print("  " + line)
    print("cluster entropies:")
    for cluster_id, entropy in sorted(entropies.items()):
        print(f"  cluster {cluster_id}: {entropy:.3f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="SparkER reproduction: scalable entity resolution"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_dataset_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--synthetic", choices=sorted(_SYNTHETIC_GENERATORS), default=None,
                         help="use a built-in synthetic dataset instead of input files")
        sub.add_argument("--entities", type=int, default=200,
                         help="number of entities for the synthetic generators")
        sub.add_argument("--seed", type=int, default=42, help="synthetic generator seed")
        sub.add_argument("--source0", help="first dataset (CSV or JSON)")
        sub.add_argument("--source1", help="second dataset for clean-clean ER")
        sub.add_argument("--ground-truth", help="CSV of matching original-id pairs")
        sub.add_argument("--id-field", default=None, help="name of the record-id column")

    run = subparsers.add_parser("run", help="run the full ER pipeline")
    add_dataset_arguments(run)
    run.add_argument("--schema-agnostic", action="store_true",
                     help="disable the loose-schema generator")
    run.add_argument("--threshold", type=float, default=None,
                     help="attribute-partitioning threshold")
    run.add_argument("--similarity", default=None, help="matcher similarity function")
    run.add_argument("--match-threshold", type=float, default=None,
                     help="matcher similarity threshold")
    run.add_argument("--engine", action="store_true",
                     help="run the distributed code paths on the mini engine")
    run.add_argument("--executor", choices=["serial", "process"], default=None,
                     help="engine executor for narrow stages (implies --engine); "
                          "'process' runs shippable stages on a process pool")
    run.add_argument("--workers", type=int, default=None,
                     help="process-pool worker count (implies --executor process; "
                          "default: CPU count)")
    run.add_argument("--output", help="write resolved entities to this JSON file")
    run.add_argument("--save-config", help="write the used configuration to this JSON file")
    run.set_defaults(handler=_command_run)

    partition = subparsers.add_parser(
        "partition", help="show the attribute partitioning at a threshold"
    )
    add_dataset_arguments(partition)
    partition.add_argument("--threshold", type=float, default=0.3)
    partition.set_defaults(handler=_command_partition)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except SparkERError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
