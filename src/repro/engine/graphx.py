"""Connected components, the GraphX primitive SparkER uses for clustering.

Two implementations are provided:

* :func:`pregel_connected_components` — the distributed "hash-min" label
  propagation algorithm GraphX implements, expressed on the mini engine with
  ``join``/``reduceByKey`` supersteps.  This is the faithful reproduction of
  what SparkER runs on a cluster.
* :func:`connected_components` — a driver-side union-find reference used for
  cross-checking and for small inputs.

Both return the same mapping from node id to component id (the minimum node
id of the component), so tests can assert their equivalence.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.engine.context import EngineContext


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}

    def add(self, item: Hashable) -> None:
        """Register ``item`` as a singleton set if unseen."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        """Return the representative of ``item``'s set (adds it if unseen)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        """Merge the sets containing ``a`` and ``b``."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]

    def components(self) -> dict[Hashable, list[Hashable]]:
        """Return representative → members mapping."""
        groups: dict[Hashable, list[Hashable]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), []).append(item)
        return groups

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)


def connected_components(
    edges: Iterable[tuple[Hashable, Hashable]],
    nodes: Iterable[Hashable] = (),
) -> dict[Hashable, Hashable]:
    """Union-find connected components.

    Returns a mapping node → component id, where the component id is the
    minimum node id (by Python ordering of ``repr`` for mixed types, natural
    ordering otherwise) in the component.
    """
    uf = UnionFind()
    for node in nodes:
        uf.add(node)
    for a, b in edges:
        uf.union(a, b)
    components: dict[Hashable, Hashable] = {}
    for representative, members in uf.components().items():
        try:
            label = min(members)
        except TypeError:
            label = min(members, key=repr)
        for member in members:
            components[member] = label
        del representative
    return components


def pregel_connected_components(
    context: EngineContext,
    edges: Iterable[tuple[Hashable, Hashable]],
    nodes: Iterable[Hashable] = (),
    max_iterations: int = 50,
) -> dict[Hashable, Hashable]:
    """Hash-min label propagation on the mini engine (GraphX-style).

    Every node starts with its own id as label; at each superstep every node
    adopts the minimum label in its neighbourhood (including itself).  The
    iteration stops when no label changes or after ``max_iterations``.
    """
    edge_list = list(edges)
    node_set = set(nodes)
    for a, b in edge_list:
        node_set.add(a)
        node_set.add(b)
    if not node_set:
        return {}

    # Symmetric adjacency as a pair RDD (node, neighbour).
    adjacency = context.parallelize(
        [(a, b) for a, b in edge_list] + [(b, a) for a, b in edge_list]
    ).cache()

    def min_label(a: Hashable, b: Hashable) -> Hashable:
        try:
            return a if a <= b else b  # type: ignore[operator]
        except TypeError:
            return a if repr(a) <= repr(b) else b

    # Keep the partition count fixed across supersteps: union() concatenates
    # partition lists and reduceByKey() would otherwise inherit the doubled
    # count, growing it exponentially over the iterations.
    num_partitions = context.default_parallelism
    labels = context.parallelize(
        [(node, node) for node in sorted(node_set, key=repr)], num_partitions
    )

    for _ in range(max_iterations):
        # Send each node's current label to its neighbours.
        messages = adjacency.join(labels, num_partitions).map(
            lambda kv: (kv[1][0], kv[1][1]), name="cc.messages"
        )
        # Combine incoming messages with the node's own label.
        candidate = labels.union(messages).reduceByKey(
            min_label, num_partitions=num_partitions
        )
        old = labels.collectAsMap()
        new = candidate.collectAsMap()
        labels = candidate
        if old == new:
            break

    return labels.collectAsMap()


def components_as_clusters(assignment: dict[Hashable, Hashable]) -> list[set[Hashable]]:
    """Convert a node → component-id mapping into a list of member sets."""
    clusters: dict[Hashable, set[Hashable]] = {}
    for node, component in assignment.items():
        clusters.setdefault(component, set()).add(node)
    return list(clusters.values())
