"""Partitioners: decide which partition a key belongs to.

Mirrors Spark's ``HashPartitioner`` and ``RangePartitioner``.  Partitioning is
deterministic across runs thanks to :func:`repro.utils.hashing.stable_hash`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import EngineError
from repro.utils.hashing import stable_hash


class Partitioner:
    """Base class: maps a key to a partition index in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise EngineError("num_partitions must be positive")
        self.num_partitions = num_partitions

    def partition(self, key: object) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.num_partitions == other.num_partitions

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_partitions})"


class HashPartitioner(Partitioner):
    """Deterministic hash partitioning (the engine's default for shuffles)."""

    def partition(self, key: object) -> int:
        return stable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Range partitioning over a sorted sample of keys.

    Used when an ordered layout is preferable (e.g. writing sorted output).
    Boundaries are computed from the provided key sample.
    """

    def __init__(self, num_partitions: int, keys: Sequence[object]) -> None:
        super().__init__(num_partitions)
        sorted_keys = sorted(keys)
        self._boundaries: list[object] = []
        if sorted_keys and num_partitions > 1:
            step = len(sorted_keys) / num_partitions
            self._boundaries = [
                sorted_keys[min(int(step * i) , len(sorted_keys) - 1)]
                for i in range(1, num_partitions)
            ]

    def partition(self, key: object) -> int:
        index = 0
        for boundary in self._boundaries:
            if key > boundary:  # type: ignore[operator]
                index += 1
            else:
                break
        return min(index, self.num_partitions - 1)
