"""Parallel shuffle subsystem: redistribute key/value records across partitions.

A shuffle is executed Spark-style, as two physical stages that both dispatch
through the context's :class:`~repro.engine.executors.Executor`:

* **map side** — one :class:`ShuffleMapTask` per parent partition buckets the
  partition's records by the target partitioner, applying the optional
  :class:`MapSideCombiner` *inside the task* (Spark's map-side combine for
  ``reduceByKey``/``aggregateByKey``), so pre-aggregation happens in the
  worker processes and only combined records cross the shuffle boundary.
  Each non-empty bucket is then **published** to the context's
  :class:`BlockStore`, which turns it into a tiny :class:`BlockRef`.
* **reduce side** — one :class:`ShuffleReduceTask` per output partition
  fetches its bucket's blocks (a :class:`FetchBlocksTask` prefixes the reduce
  chain) and merges the chunks across all map outputs (concatenation,
  per-key reduce, grouping or two-sided cogroup), again inside a worker task.

Between the two stages the driver only transposes the block refs (map output
``m``, bucket ``r`` → reduce input ``r``, chunk ``m``) and records the
communication volume: shuffled records *and* pickled bytes per task, split
into **driver-relayed** and **peer-transferred** bytes (see `Block stores`_).

Every task object in this module is a module-level picklable callable with
bound arguments (never a closure), so a shuffle whose user functions pickle
ships to the multiprocessing executor unchanged; the chunk order is fixed
(side-major, then map-partition order), which keeps the reduce-side merge —
and therefore every downstream float accumulation — bit-for-bit identical to
a serial in-driver run, whichever block store carries the payloads.

Block stores
------------
A :class:`BlockStore` decides *how a bucket's payload travels* from the map
task that produced it to the reduce task that consumes it:

* :class:`DriverBlockStore` (default) — the payload rides inline in the
  :class:`BlockRef` itself, through the task outcome, the driver's
  transpose, and the reduce task's submission: two driver round-trips per
  record, the engine's historical behaviour.  All shuffle bytes are
  *driver-relayed*.
* :class:`SharedMemoryBlockStore` — the map task pickles the bucket into a
  named ``multiprocessing.shared_memory`` segment and ships only the name
  and size; the reduce task attaches and deserialises directly, peer to
  peer.  The driver brokers block *names*, never payload bytes, so the
  driver-relayed volume collapses to the few dozen bytes of each ref while
  the payload moves as *peer-transferred* bytes.  Oversized buckets (see
  ``spill_over_bytes``) and environments without working POSIX shared
  memory fall back per-block to the spill-file path.
* :class:`SpillFileBlockStore` — like the shared-memory store, but payloads
  are pickle files in a run-scoped spill directory.  Slower, but works
  everywhere a filesystem does; it is also the fallback target above.

Segment naming, ownership and unlink responsibilities
-----------------------------------------------------
Shuffle segments are named ``repro-shuf-<pid>-<seq>`` (see
:func:`repro.engine.sharedmem.make_segment_name`); the pid is the
*publishing* process — a pool worker under the process executor, the driver
itself under the serial executor.  Ownership then transfers to the driver:

* a **worker-published** segment is created untracked; its name rides back
  to the driver on ``TaskOutcome.published_segments``, where the executor
  immediately adds it to the protected set so a pool rebuild's orphan sweep
  (:func:`repro.engine.sharedmem.sweep_orphaned_segments`) never unlinks a
  block that a pending reduce task still needs — even if the worker that
  created it has since died;
* a **driver-published** segment is registered in the driver's live-owner
  set instead, which the sweep also skips;
* :func:`execute_shuffle` **unlinks every block** (and drops its
  protection) once the reduce stage has consumed it — success or failure —
  so no segment or spill file outlives the shuffle that created it;
  ``BlockStore.close()`` (wired to ``EngineContext.stop()``) and the
  executor-close sweep are the backstops for blocks stranded by a crash.

Spill files follow the same shape with the spill directory as the unit of
last resort: blocks are deleted as they are released and the whole run
directory is removed by ``close()``.
"""

from __future__ import annotations

import os
import pickle
from collections import defaultdict
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import TYPE_CHECKING, Any

from repro.engine import sharedmem as _segments
from repro.engine import tmpfiles as _tmpfiles
from repro.engine.partitioner import Partitioner
from repro.exceptions import EngineError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.engine.context import EngineContext

ENV_VAR = "REPRO_BLOCK_STORE"

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def _identity(value: Any) -> Any:
    """Default ``create_combiner``: the first value of a key is kept as-is."""
    return value


def chunk_bytes(chunk: Sequence[Any]) -> int:
    """Wire size of one shuffle block: the pickled length of its record list.

    This is exactly what the multiprocessing executor ships per block under
    the driver store (and what a peer store writes into its segment or spill
    file), so the recorded shuffle bytes are the real payload volume of a
    process-pool run whichever path carries it.
    """
    return len(pickle.dumps(list(chunk), protocol=_PICKLE_PROTOCOL))


# --------------------------------------------------------------------- blocks
class BlockRef:
    """Handle to one published shuffle block (one bucket of one map output).

    The ref is what crosses the driver: it carries the record count and
    payload size for metrics, knows how to :meth:`fetch` the payload back and
    how to :meth:`release` the underlying storage.  Refs are tiny and
    picklable; only :class:`InlineBlock` carries the payload itself.
    """

    __slots__ = ("records", "payload_bytes")

    def __init__(self, records: int, payload_bytes: int) -> None:
        self.records = records
        self.payload_bytes = payload_bytes

    def fetch(self) -> list[Any]:
        """Materialise the block's records (reduce side, exactly once)."""
        raise NotImplementedError

    def release(self) -> None:
        """Free the block's backing storage; idempotent, any process."""

    def relay_bytes(self) -> int:
        """Bytes of this block the *driver* relays (ref size for peer stores)."""
        return len(pickle.dumps(self, protocol=_PICKLE_PROTOCOL))

    def peer_bytes(self) -> int:
        """Payload bytes that move peer-to-peer, bypassing the driver."""
        return self.payload_bytes

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(records={self.records}, "
            f"payload_bytes={self.payload_bytes})"
        )


class InlineBlock(BlockRef):
    """Driver-relayed block: the payload travels inside the ref itself."""

    __slots__ = ("payload",)

    def __init__(self, payload: list[Any], records: int, payload_bytes: int) -> None:
        super().__init__(records, payload_bytes)
        self.payload = payload

    def fetch(self) -> list[Any]:
        return self.payload

    def relay_bytes(self) -> int:
        return self.payload_bytes

    def peer_bytes(self) -> int:
        return 0


class SegmentBlock(BlockRef):
    """Peer-transferred block living in a named shared-memory segment."""

    __slots__ = ("name",)

    def __init__(self, name: str, records: int, payload_bytes: int) -> None:
        super().__init__(records, payload_bytes)
        self.name = name

    def fetch(self) -> list[Any]:
        try:
            shm = _segments.attach_untracked(self.name)
        except FileNotFoundError as error:
            raise EngineError(
                f"shuffle block segment {self.name!r} is gone — it was "
                f"unlinked (or its publishing worker swept) before the "
                f"reduce task could attach"
            ) from error
        try:
            # The segment may be rounded up past the payload; slice exactly.
            return pickle.loads(bytes(shm.buf[: self.payload_bytes]))
        finally:
            _segments.quiet_close(shm)

    def release(self) -> None:
        _segments.unlink_segment(self.name)

    def __repr__(self) -> str:
        return (
            f"SegmentBlock(name={self.name!r}, records={self.records}, "
            f"payload_bytes={self.payload_bytes})"
        )


class FileBlock(BlockRef):
    """Peer-transferred block spilled to a pickle file."""

    __slots__ = ("path",)

    def __init__(self, path: str, records: int, payload_bytes: int) -> None:
        super().__init__(records, payload_bytes)
        self.path = path

    def fetch(self) -> list[Any]:
        try:
            with open(self.path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError as error:
            raise EngineError(
                f"shuffle spill block {self.path!r} is gone — it was deleted "
                f"before the reduce task could read it"
            ) from error

    def release(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        return (
            f"FileBlock(path={self.path!r}, records={self.records}, "
            f"payload_bytes={self.payload_bytes})"
        )


# --------------------------------------------------------------------- stores
class BlockStore:
    """Policy for moving shuffle block payloads from map tasks to reducers.

    ``publish`` runs *inside the map task* (a pool worker under the process
    executor); ``close`` runs in the driver when the owning
    :class:`~repro.engine.context.EngineContext` stops.  Stores must pickle —
    they ride to the workers inside the :class:`ShuffleMapTask` — so they
    hold only plain configuration (paths, thresholds), never open handles.
    """

    name = "blockstore"

    def publish(self, bucket: Sequence[Any]) -> BlockRef:
        """Store one non-empty bucket; return the ref the driver transposes."""
        raise NotImplementedError

    def close(self) -> None:
        """Release run-scoped storage (spill directories, stranded segments)."""

    def spec(self) -> str:
        """The spec string that reproduces this store (for resolved configs)."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class DriverBlockStore(BlockStore):
    """Relay every payload through the driver (the historical behaviour).

    The bucket rides inside the :class:`InlineBlock`: worker → driver in the
    task outcome, driver → reducer in the reduce task's input partition.
    Simple and dependency-free, but each record is pickled across the driver
    twice — the scale ceiling the peer stores remove.
    """

    name = "driver"

    def publish(self, bucket: Sequence[Any]) -> BlockRef:
        payload = list(bucket)
        return InlineBlock(payload, len(payload), chunk_bytes(payload))


class SpillFileBlockStore(BlockStore):
    """Publish buckets as pickle files in a run-scoped spill directory.

    The directory is chosen by the driver at construction time and rides in
    the pickled store, so every worker writes into the same run directory.
    It is a managed pid-stamped artifact under the unified temp root
    (``tmp_dir`` argument, ``REPRO_TMPDIR``, or the platform default — see
    :mod:`repro.engine.tmpfiles`), so a crashed driver's directory is
    reclaimed by the same orphan sweep that covers memmap index buffers.
    Blocks are deleted as the shuffle releases them; ``close`` removes the
    whole directory, catching anything stranded by a crashed attempt.
    """

    name = "spill"

    def __init__(
        self,
        directory: str | None = None,
        tmp_dir: str | None = None,
    ) -> None:
        self.directory = directory or _tmpfiles.make_artifact_dir("spill", tmp_dir)

    def publish(self, bucket: Sequence[Any]) -> BlockRef:
        payload = pickle.dumps(list(bucket), protocol=_PICKLE_PROTOCOL)
        return self.publish_payload(payload, len(bucket))

    def publish_payload(self, payload: bytes, records: int) -> BlockRef:
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(
            self.directory,
            f"block-{os.getpid()}-{next(_segments._segment_ids)}.pkl",
        )
        with open(path, "wb") as handle:
            handle.write(payload)
        return FileBlock(path, records, len(payload))

    def close(self) -> None:
        _tmpfiles.discard_artifact(self.directory)

    def __repr__(self) -> str:
        return f"SpillFileBlockStore(directory={self.directory!r})"


class SharedMemoryBlockStore(BlockStore):
    """Publish buckets as named shared-memory segments, peer to peer.

    Each bucket is pickled once, in the map task, into a fresh
    ``repro-shuf-*`` segment; the reduce task attaches by name and
    deserialises directly, so payload bytes never touch the driver.  Buckets
    larger than ``spill_over_bytes`` — and every bucket when POSIX shared
    memory is unavailable or exhausted — spill to the companion
    :class:`SpillFileBlockStore` instead, per block.
    """

    name = "shared-memory"

    def __init__(
        self,
        spill_over_bytes: int | None = None,
        spill_directory: str | None = None,
        tmp_dir: str | None = None,
    ) -> None:
        if spill_over_bytes is not None and spill_over_bytes <= 0:
            raise EngineError("spill_over_bytes must be positive")
        self.spill_over_bytes = spill_over_bytes
        self._spill = SpillFileBlockStore(spill_directory, tmp_dir=tmp_dir)

    def publish(self, bucket: Sequence[Any]) -> BlockRef:
        payload = pickle.dumps(list(bucket), protocol=_PICKLE_PROTOCOL)
        if (
            self.spill_over_bytes is not None
            and len(payload) > self.spill_over_bytes
        ):
            return self._spill.publish_payload(payload, len(bucket))
        name = _segments.make_segment_name("shuf")
        try:
            shm = _segments.create_untracked(name, max(1, len(payload)))
        except (OSError, ImportError):
            # No (or no more) POSIX shared memory here: degrade per block.
            return self._spill.publish_payload(payload, len(bucket))
        shm.buf[: len(payload)] = payload
        # Ownership: inside a worker task the name is captured onto the
        # outcome (the driver protects it until the reduce consumed it);
        # published from the driver itself it joins the live-owner set so
        # the orphan sweep leaves it alone until released.
        if not _segments.record_published(name):
            _segments.register_owned(name)
        _segments.quiet_close(shm)
        return SegmentBlock(name, len(bucket), len(payload))

    def close(self) -> None:
        # Unlink any own-pid shuffle segments stranded by an aborted run,
        # then drop the spill directory.
        for name in _segments.live_segments("shuf"):
            _segments.unlink_segment(name)
        self._spill.close()

    def __repr__(self) -> str:
        return (
            f"SharedMemoryBlockStore(spill_over_bytes={self.spill_over_bytes!r}, "
            f"spill_directory={self._spill.directory!r})"
        )


def resolve_block_store(
    spec: "BlockStore | str | None" = None, tmp_dir: "str | None" = None
) -> BlockStore:
    """Turn a block-store spec into a :class:`BlockStore` instance.

    ``None`` consults the ``REPRO_BLOCK_STORE`` environment variable and
    defaults to the driver store.  Strings: ``"driver"`` (inline relay),
    ``"shared-memory"`` (aliases ``"shm"``, ``"sharedmem"``), ``"spill"``
    (aliases ``"file"``, ``"spill-file"``).  ``tmp_dir`` roots any spill
    directory the resolved store creates (a prebuilt store keeps its own).
    """
    if spec is None:
        spec = os.environ.get(ENV_VAR, "").strip() or "driver"
    if isinstance(spec, BlockStore):
        return spec
    if not isinstance(spec, str):
        raise EngineError(
            f"block store spec must be a BlockStore or a string, got {spec!r}"
        )
    name = spec.strip().lower()
    if name in ("driver", "inline"):
        return DriverBlockStore()
    if name in ("shared-memory", "shared_memory", "sharedmem", "shm"):
        return SharedMemoryBlockStore(tmp_dir=tmp_dir)
    if name in ("spill", "file", "spill-file"):
        return SpillFileBlockStore(tmp_dir=tmp_dir)
    raise EngineError(
        f"unknown block store {spec!r}; expected 'driver', 'shared-memory' "
        f"or 'spill'"
    )


# ---------------------------------------------------------------- map & reduce
class MapSideCombiner:
    """Picklable pre-aggregation policy applied inside each map task.

    ``create(value)`` builds the combined value on a key's first occurrence;
    ``merge(combined, value)`` folds every later occurrence in encounter
    order.  For ``reduceByKey`` both are the user reducer (with an identity
    ``create``); for ``aggregateByKey`` they are ``seq_op`` seeded with the
    zero value.
    """

    __slots__ = ("create", "merge")

    def __init__(
        self,
        merge: Callable[[Any, Any], Any],
        create: Callable[[Any], Any] = _identity,
    ) -> None:
        self.create = create
        self.merge = merge

    def __repr__(self) -> str:
        return f"MapSideCombiner(merge={self.merge!r}, create={self.create!r})"


class ZeroSeededCombiner:
    """``aggregateByKey``'s map-side ``create``: fold the value into ``zero``."""

    __slots__ = ("zero", "seq_op")

    def __init__(self, zero: Any, seq_op: Callable[[Any, Any], Any]) -> None:
        self.zero = zero
        self.seq_op = seq_op

    def __call__(self, value: Any) -> Any:
        return self.seq_op(self.zero, value)


class ShuffleMapTask:
    """Map-side shuffle task: bucket (and pre-combine) one parent partition.

    Runs as a one-function stage chain on the executor; yields exactly one
    element — the list of ``num_partitions`` shuffle blocks — so the stage's
    output partition *is* the task's map output.  With a combiner, each
    bucket is a per-key dict in first-touch order; the per-bucket dicts are
    order-equivalent to combining the whole partition first and bucketing
    after (a key's bucket never changes), which preserves the historical
    record order exactly.

    With a ``store``, each non-empty bucket is published to it and the task
    yields the list of :class:`BlockRef` handles (``None`` for empty
    buckets); without one (direct use, tests) it yields the raw buckets.
    """

    __slots__ = ("partitioner", "combiner", "store")

    def __init__(
        self,
        partitioner: Partitioner,
        combiner: MapSideCombiner | None = None,
        store: BlockStore | None = None,
    ) -> None:
        self.partitioner = partitioner
        self.combiner = combiner
        self.store = store

    def __call__(
        self, _index: int, records: Iterator[tuple[Any, Any]]
    ) -> Iterable[list[Any]]:
        num_partitions = self.partitioner.num_partitions
        partition_of = self.partitioner.partition
        combiner = self.combiner
        if combiner is None:
            buckets: list[list[tuple[Any, Any]]] = [[] for _ in range(num_partitions)]
            for record in records:
                buckets[partition_of(record[0])].append(record)
        else:
            create, merge = combiner.create, combiner.merge
            combined: list[dict[Any, Any]] = [{} for _ in range(num_partitions)]
            for key, value in records:
                bucket = combined[partition_of(key)]
                if key in bucket:
                    bucket[key] = merge(bucket[key], value)
                else:
                    bucket[key] = create(value)
            buckets = [list(bucket.items()) for bucket in combined]
        store = self.store
        if store is None:
            yield buckets
        else:
            yield [store.publish(bucket) if bucket else None for bucket in buckets]

    def __repr__(self) -> str:
        return (
            f"ShuffleMapTask({self.partitioner!r}, combiner={self.combiner!r}, "
            f"store={self.store!r})"
        )


class FetchBlocksTask:
    """Reduce-side prologue: materialise each routed block ref into its chunk.

    Prefixes the reduce task in the stage chain, so the fetch — a
    shared-memory attach or spill-file read under the peer stores — runs in
    the reduce worker, not the driver.  ``tagged`` mirrors the cogroup wire
    format where each routed entry is ``(side, ref)``.
    """

    __slots__ = ("tagged",)

    def __init__(self, tagged: bool) -> None:
        self.tagged = tagged

    def __call__(self, _index: int, refs: Iterator[Any]) -> Iterable[Any]:
        if self.tagged:
            for side, ref in refs:
                yield side, ref.fetch()
        else:
            for ref in refs:
                yield ref.fetch()

    def __repr__(self) -> str:
        return f"FetchBlocksTask(tagged={self.tagged!r})"


class ShuffleReduceTask:
    """Base of the reduce-side merge tasks.

    Runs on the executor behind a :class:`FetchBlocksTask`; the task's input
    partition is the list of shuffle-block chunks routed to this reducer, in
    side-major then map-partition order.
    """

    __slots__ = ()

    def __call__(self, _index: int, chunks: Iterator[Any]) -> Iterable[Any]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ConcatReduceTask(ShuffleReduceTask):
    """``partitionBy``: keep the shuffled records as-is, in chunk order."""

    __slots__ = ()

    def __call__(
        self, _index: int, chunks: Iterator[list[tuple[Any, Any]]]
    ) -> Iterable[tuple[Any, Any]]:
        for chunk in chunks:
            yield from chunk


class ReduceByKeyTask(ShuffleReduceTask):
    """Merge one bucket's chunks with a per-key reducer (encounter order).

    The first value of a key is kept as-is and every later one folded with
    ``reducer`` — the combine step of ``reduceByKey`` *and* of
    ``aggregateByKey`` (whose ``comb_op`` merges map-side accumulators).
    """

    __slots__ = ("reducer",)

    def __init__(self, reducer: Callable[[Any, Any], Any]) -> None:
        self.reducer = reducer

    def __call__(
        self, _index: int, chunks: Iterator[list[tuple[Any, Any]]]
    ) -> Iterable[tuple[Any, Any]]:
        reducer = self.reducer
        reduced: dict[Any, Any] = {}
        for chunk in chunks:
            for key, value in chunk:
                if key in reduced:
                    reduced[key] = reducer(reduced[key], value)
                else:
                    reduced[key] = value
        return reduced.items()

    def __repr__(self) -> str:
        return f"ReduceByKeyTask({self.reducer!r})"


class GroupByKeyTask(ShuffleReduceTask):
    """Group one bucket's values per key, in encounter order."""

    __slots__ = ()

    def __call__(
        self, _index: int, chunks: Iterator[list[tuple[Any, Any]]]
    ) -> Iterable[tuple[Any, list[Any]]]:
        grouped: dict[Any, list[Any]] = defaultdict(list)
        for chunk in chunks:
            for key, value in chunk:
                grouped[key].append(value)
        return grouped.items()


class CoGroupReduceTask(ShuffleReduceTask):
    """Two-sided merge: ``(key, (left values, right values))``.

    Chunks arrive tagged ``(side, records)``; left chunks sort first (the
    driver routes them side-major), so keys appear in left-first first-touch
    order — the order the in-driver cogroup has always produced.
    """

    __slots__ = ()

    def __call__(
        self, _index: int, chunks: Iterator[tuple[int, list[tuple[Any, Any]]]]
    ) -> Iterable[tuple[Any, tuple[list[Any], list[Any]]]]:
        grouped: dict[Any, tuple[list[Any], list[Any]]] = defaultdict(
            lambda: ([], [])
        )
        for side, chunk in chunks:
            for key, value in chunk:
                grouped[key][side].append(value)
        return ((key, (values[0], values[1])) for key, values in grouped.items())


def execute_shuffle(
    context: "EngineContext",
    partitioner: Partitioner,
    sides: Sequence[tuple[Sequence[Sequence[tuple[Any, Any]]], MapSideCombiner | None]],
    reduce_task: ShuffleReduceTask,
    name: str,
) -> list[list[Any]]:
    """Run a full shuffle (map stage per side, one reduce stage) and return
    the reduced partitions.

    ``sides`` is a list of ``(parent partitions, map-side combiner)`` pairs —
    one entry for a plain shuffle, two for a cogroup.  Both phases dispatch
    through ``context.executor``, so under a process executor the map-side
    combine, the block publish, the block fetch and the reduce-side merge all
    run in worker processes (the recorded task metrics carry the worker
    pids); under the serial executor everything runs in the driver in
    partition order, byte-identical to the historical in-driver shuffle.

    The driver transposes only :class:`BlockRef` handles between the phases.
    Per-task metrics record the shuffled records, the total payload bytes
    (``shuffle_write_bytes`` — a property of the job, identical across
    executors and stores) and the driver-relayed vs peer-transferred split
    (``shuffle_relay_bytes`` / ``shuffle_peer_bytes`` — a property of the
    block store).  Every published block is released — the segment or spill
    file unlinked and its sweep protection dropped — after the reduce stage,
    success or failure, so no block outlives the shuffle that made it.
    """
    num_reduce = partitioner.num_partitions
    tagged = len(sides) > 1
    store = getattr(context, "block_store", None) or _DEFAULT_STORE
    reduce_inputs: list[list[Any]] = [[] for _ in range(num_reduce)]
    read_records = [0] * num_reduce
    read_bytes = [0] * num_reduce
    published: list[BlockRef] = []

    try:
        for side_index, (parent_partitions, combiner) in enumerate(sides):
            map_task = ShuffleMapTask(partitioner, combiner, store)
            side_suffix = f".side{side_index}" if tagged else ""
            stage_name = f"{name}.map{side_suffix}"
            result = context.executor.run_stage(
                [map_task], parent_partitions, name=stage_name
            )
            context.merge_stage_result(result)
            stage = context.scheduler.new_stage(stage_name, executor=result.executor)
            for index, outcome in enumerate(result.tasks):
                refs = outcome.partition[0]
                task_records = 0
                task_bytes = 0
                task_relay = 0
                task_peer = 0
                for reduce_index, ref in enumerate(refs):
                    if ref is None:
                        continue
                    published.append(ref)
                    task_records += ref.records
                    task_bytes += ref.payload_bytes
                    task_relay += ref.relay_bytes()
                    task_peer += ref.peer_bytes()
                    read_records[reduce_index] += ref.records
                    read_bytes[reduce_index] += ref.payload_bytes
                    reduce_inputs[reduce_index].append(
                        (side_index, ref) if tagged else ref
                    )
                context.scheduler.record_task(
                    stage,
                    index,
                    input_records=len(parent_partitions[index]),
                    output_records=task_records,
                    shuffle_write_records=task_records,
                    shuffle_write_bytes=task_bytes,
                    shuffle_relay_bytes=task_relay,
                    shuffle_peer_bytes=task_peer,
                    elapsed_seconds=outcome.elapsed_seconds,
                    worker=outcome.worker,
                    attempts=outcome.attempts,
                    failures=outcome.failures,
                    max_rss_bytes=outcome.max_rss_bytes,
                )

        result = context.executor.run_stage(
            [FetchBlocksTask(tagged), reduce_task],
            reduce_inputs,
            name=f"{name}.reduce",
        )
        context.merge_stage_result(result)
        stage = context.scheduler.new_stage(f"{name}.reduce", executor=result.executor)
        partitions: list[list[Any]] = []
        for index, outcome in enumerate(result.tasks):
            partition = outcome.partition
            partitions.append(partition)
            context.scheduler.record_task(
                stage,
                index,
                input_records=read_records[index],
                output_records=len(partition),
                shuffle_read_records=read_records[index],
                shuffle_read_bytes=read_bytes[index],
                elapsed_seconds=outcome.elapsed_seconds,
                worker=outcome.worker,
                attempts=outcome.attempts,
                failures=outcome.failures,
                max_rss_bytes=outcome.max_rss_bytes,
            )
        return partitions
    finally:
        for ref in published:
            try:
                ref.release()
            except Exception:  # pragma: no cover - release is best-effort
                pass


_DEFAULT_STORE = DriverBlockStore()
