"""Parallel shuffle subsystem: redistribute key/value records across partitions.

A shuffle is executed Spark-style, as two physical stages that both dispatch
through the context's :class:`~repro.engine.executors.Executor`:

* **map side** — one :class:`ShuffleMapTask` per parent partition buckets the
  partition's records by the target partitioner, applying the optional
  :class:`MapSideCombiner` *inside the task* (Spark's map-side combine for
  ``reduceByKey``/``aggregateByKey``), so pre-aggregation happens in the
  worker processes and only combined records cross the shuffle boundary.
* **reduce side** — one :class:`ShuffleReduceTask` per output partition merges
  its bucket's chunks across all map outputs (concatenation, per-key reduce,
  grouping or two-sided cogroup), again inside a worker task.

Between the two stages the driver only transposes the shuffle blocks (map
output ``m``, bucket ``r`` → reduce input ``r``, chunk ``m``) and records the
communication volume: shuffled records *and* pickled bytes per task, the wire
format the scalability benchmarks report.

Every task object in this module is a module-level picklable callable with
bound arguments (never a closure), so a shuffle whose user functions pickle
ships to the multiprocessing executor unchanged; the chunk order is fixed
(side-major, then map-partition order), which keeps the reduce-side merge —
and therefore every downstream float accumulation — bit-for-bit identical to
a serial in-driver run.
"""

from __future__ import annotations

import pickle
from collections import defaultdict
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import TYPE_CHECKING, Any

from repro.engine.partitioner import Partitioner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.engine.context import EngineContext


def _identity(value: Any) -> Any:
    """Default ``create_combiner``: the first value of a key is kept as-is."""
    return value


def chunk_bytes(chunk: Sequence[Any]) -> int:
    """Wire size of one shuffle block: the pickled length of its record list.

    This is exactly what the multiprocessing executor ships per block, so the
    recorded shuffle bytes are the real IPC volume of a process-pool run (and
    the would-be volume of a serial run).
    """
    return len(pickle.dumps(list(chunk), protocol=pickle.HIGHEST_PROTOCOL))


class MapSideCombiner:
    """Picklable pre-aggregation policy applied inside each map task.

    ``create(value)`` builds the combined value on a key's first occurrence;
    ``merge(combined, value)`` folds every later occurrence in encounter
    order.  For ``reduceByKey`` both are the user reducer (with an identity
    ``create``); for ``aggregateByKey`` they are ``seq_op`` seeded with the
    zero value.
    """

    __slots__ = ("create", "merge")

    def __init__(
        self,
        merge: Callable[[Any, Any], Any],
        create: Callable[[Any], Any] = _identity,
    ) -> None:
        self.create = create
        self.merge = merge

    def __repr__(self) -> str:
        return f"MapSideCombiner(merge={self.merge!r}, create={self.create!r})"


class ZeroSeededCombiner:
    """``aggregateByKey``'s map-side ``create``: fold the value into ``zero``."""

    __slots__ = ("zero", "seq_op")

    def __init__(self, zero: Any, seq_op: Callable[[Any, Any], Any]) -> None:
        self.zero = zero
        self.seq_op = seq_op

    def __call__(self, value: Any) -> Any:
        return self.seq_op(self.zero, value)


class ShuffleMapTask:
    """Map-side shuffle task: bucket (and pre-combine) one parent partition.

    Runs as a one-function stage chain on the executor; yields exactly one
    element — the list of ``num_partitions`` shuffle blocks — so the stage's
    output partition *is* the task's map output.  With a combiner, each
    bucket is a per-key dict in first-touch order; the per-bucket dicts are
    order-equivalent to combining the whole partition first and bucketing
    after (a key's bucket never changes), which preserves the historical
    record order exactly.
    """

    __slots__ = ("partitioner", "combiner")

    def __init__(
        self, partitioner: Partitioner, combiner: MapSideCombiner | None = None
    ) -> None:
        self.partitioner = partitioner
        self.combiner = combiner

    def __call__(
        self, _index: int, records: Iterator[tuple[Any, Any]]
    ) -> Iterable[list[list[tuple[Any, Any]]]]:
        num_partitions = self.partitioner.num_partitions
        partition_of = self.partitioner.partition
        combiner = self.combiner
        if combiner is None:
            buckets: list[list[tuple[Any, Any]]] = [[] for _ in range(num_partitions)]
            for record in records:
                buckets[partition_of(record[0])].append(record)
        else:
            create, merge = combiner.create, combiner.merge
            combined: list[dict[Any, Any]] = [{} for _ in range(num_partitions)]
            for key, value in records:
                bucket = combined[partition_of(key)]
                if key in bucket:
                    bucket[key] = merge(bucket[key], value)
                else:
                    bucket[key] = create(value)
            buckets = [list(bucket.items()) for bucket in combined]
        yield buckets

    def __repr__(self) -> str:
        return f"ShuffleMapTask({self.partitioner!r}, combiner={self.combiner!r})"


class ShuffleReduceTask:
    """Base of the reduce-side merge tasks.

    Runs as a one-function stage chain on the executor; the task's input
    partition is the list of shuffle-block chunks routed to this reducer, in
    side-major then map-partition order.
    """

    __slots__ = ()

    def __call__(self, _index: int, chunks: Iterator[Any]) -> Iterable[Any]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ConcatReduceTask(ShuffleReduceTask):
    """``partitionBy``: keep the shuffled records as-is, in chunk order."""

    __slots__ = ()

    def __call__(
        self, _index: int, chunks: Iterator[list[tuple[Any, Any]]]
    ) -> Iterable[tuple[Any, Any]]:
        for chunk in chunks:
            yield from chunk


class ReduceByKeyTask(ShuffleReduceTask):
    """Merge one bucket's chunks with a per-key reducer (encounter order).

    The first value of a key is kept as-is and every later one folded with
    ``reducer`` — the combine step of ``reduceByKey`` *and* of
    ``aggregateByKey`` (whose ``comb_op`` merges map-side accumulators).
    """

    __slots__ = ("reducer",)

    def __init__(self, reducer: Callable[[Any, Any], Any]) -> None:
        self.reducer = reducer

    def __call__(
        self, _index: int, chunks: Iterator[list[tuple[Any, Any]]]
    ) -> Iterable[tuple[Any, Any]]:
        reducer = self.reducer
        reduced: dict[Any, Any] = {}
        for chunk in chunks:
            for key, value in chunk:
                if key in reduced:
                    reduced[key] = reducer(reduced[key], value)
                else:
                    reduced[key] = value
        return reduced.items()

    def __repr__(self) -> str:
        return f"ReduceByKeyTask({self.reducer!r})"


class GroupByKeyTask(ShuffleReduceTask):
    """Group one bucket's values per key, in encounter order."""

    __slots__ = ()

    def __call__(
        self, _index: int, chunks: Iterator[list[tuple[Any, Any]]]
    ) -> Iterable[tuple[Any, list[Any]]]:
        grouped: dict[Any, list[Any]] = defaultdict(list)
        for chunk in chunks:
            for key, value in chunk:
                grouped[key].append(value)
        return grouped.items()


class CoGroupReduceTask(ShuffleReduceTask):
    """Two-sided merge: ``(key, (left values, right values))``.

    Chunks arrive tagged ``(side, records)``; left chunks sort first (the
    driver routes them side-major), so keys appear in left-first first-touch
    order — the order the in-driver cogroup has always produced.
    """

    __slots__ = ()

    def __call__(
        self, _index: int, chunks: Iterator[tuple[int, list[tuple[Any, Any]]]]
    ) -> Iterable[tuple[Any, tuple[list[Any], list[Any]]]]:
        grouped: dict[Any, tuple[list[Any], list[Any]]] = defaultdict(
            lambda: ([], [])
        )
        for side, chunk in chunks:
            for key, value in chunk:
                grouped[key][side].append(value)
        return ((key, (values[0], values[1])) for key, values in grouped.items())


def execute_shuffle(
    context: "EngineContext",
    partitioner: Partitioner,
    sides: Sequence[tuple[Sequence[Sequence[tuple[Any, Any]]], MapSideCombiner | None]],
    reduce_task: ShuffleReduceTask,
    name: str,
) -> list[list[Any]]:
    """Run a full shuffle (map stage per side, one reduce stage) and return
    the reduced partitions.

    ``sides`` is a list of ``(parent partitions, map-side combiner)`` pairs —
    one entry for a plain shuffle, two for a cogroup.  Both phases dispatch
    through ``context.executor``, so under a process executor the map-side
    combine and the reduce-side merge run in worker processes (the recorded
    task metrics carry the worker pids); under the serial executor everything
    runs in the driver in partition order, byte-identical to the historical
    in-driver shuffle.  Per-task shuffle records *and* pickled wire bytes are
    recorded on the scheduler for both phases; measuring bytes costs one
    ``pickle.dumps`` pass over the shuffled data in the driver (the e2e
    bench guard tracks this plumbing overhead), which buys an
    executor-independent, deterministic wire-volume metric.
    """
    num_reduce = partitioner.num_partitions
    tagged = len(sides) > 1
    reduce_inputs: list[list[Any]] = [[] for _ in range(num_reduce)]
    read_records = [0] * num_reduce
    read_bytes = [0] * num_reduce

    for side_index, (parent_partitions, combiner) in enumerate(sides):
        map_task = ShuffleMapTask(partitioner, combiner)
        side_suffix = f".side{side_index}" if tagged else ""
        stage_name = f"{name}.map{side_suffix}"
        result = context.executor.run_stage(
            [map_task], parent_partitions, name=stage_name
        )
        context.merge_stage_result(result)
        stage = context.scheduler.new_stage(stage_name, executor=result.executor)
        for index, outcome in enumerate(result.tasks):
            buckets = outcome.partition[0]
            task_records = 0
            task_bytes = 0
            for reduce_index, bucket in enumerate(buckets):
                if not bucket:
                    continue
                size = chunk_bytes(bucket)
                task_records += len(bucket)
                task_bytes += size
                read_records[reduce_index] += len(bucket)
                read_bytes[reduce_index] += size
                reduce_inputs[reduce_index].append(
                    (side_index, bucket) if tagged else bucket
                )
            context.scheduler.record_task(
                stage,
                index,
                input_records=len(parent_partitions[index]),
                output_records=task_records,
                shuffle_write_records=task_records,
                shuffle_write_bytes=task_bytes,
                elapsed_seconds=outcome.elapsed_seconds,
                worker=outcome.worker,
                attempts=outcome.attempts,
                failures=outcome.failures,
            )

    result = context.executor.run_stage(
        [reduce_task], reduce_inputs, name=f"{name}.reduce"
    )
    context.merge_stage_result(result)
    stage = context.scheduler.new_stage(f"{name}.reduce", executor=result.executor)
    partitions: list[list[Any]] = []
    for index, outcome in enumerate(result.tasks):
        partition = outcome.partition
        partitions.append(partition)
        context.scheduler.record_task(
            stage,
            index,
            input_records=read_records[index],
            output_records=len(partition),
            shuffle_read_records=read_records[index],
            shuffle_read_bytes=read_bytes[index],
            elapsed_seconds=outcome.elapsed_seconds,
            worker=outcome.worker,
            attempts=outcome.attempts,
            failures=outcome.failures,
        )
    return partitions
