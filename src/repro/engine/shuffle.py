"""Shuffle machinery: redistribute key/value records across partitions.

A shuffle takes the materialised partitions of a parent pair-RDD, optionally
applies a map-side combiner (as Spark does for ``reduceByKey``), then buckets
every record by the target partitioner.  The number of records written to the
shuffle is recorded so benchmarks can report communication volume.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Sequence
from typing import Any

from repro.engine.partitioner import Partitioner


def map_side_combine(
    partition: Sequence[tuple[Any, Any]],
    create_combiner: Callable[[Any], Any],
    merge_value: Callable[[Any, Any], Any],
) -> list[tuple[Any, Any]]:
    """Pre-aggregate a partition before the shuffle (Spark's map-side combine)."""
    combined: dict[Any, Any] = {}
    for key, value in partition:
        if key in combined:
            combined[key] = merge_value(combined[key], value)
        else:
            combined[key] = create_combiner(value)
    return list(combined.items())


def shuffle_partitions(
    parent_partitions: Sequence[Sequence[tuple[Any, Any]]],
    partitioner: Partitioner,
) -> tuple[list[list[tuple[Any, Any]]], int]:
    """Redistribute ``(key, value)`` records according to ``partitioner``.

    Returns the new partition list and the number of shuffled records.
    """
    buckets: list[list[tuple[Any, Any]]] = [[] for _ in range(partitioner.num_partitions)]
    shuffled = 0
    for partition in parent_partitions:
        for key, value in partition:
            buckets[partitioner.partition(key)].append((key, value))
            shuffled += 1
    return buckets, shuffled


def group_by_key_partition(
    partition: Sequence[tuple[Any, Any]],
) -> list[tuple[Any, list[Any]]]:
    """Group the values of each key within a single (already shuffled) partition."""
    grouped: dict[Any, list[Any]] = defaultdict(list)
    for key, value in partition:
        grouped[key].append(value)
    return list(grouped.items())


def reduce_by_key_partition(
    partition: Sequence[tuple[Any, Any]],
    reducer: Callable[[Any, Any], Any],
) -> list[tuple[Any, Any]]:
    """Reduce the values of each key within a single (already shuffled) partition."""
    reduced: dict[Any, Any] = {}
    for key, value in partition:
        if key in reduced:
            reduced[key] = reducer(reduced[key], value)
        else:
            reduced[key] = value
    return list(reduced.items())
