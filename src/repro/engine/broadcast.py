"""Broadcast variables.

In Spark a broadcast variable ships a read-only value to every executor once
instead of with every task.  The parallel meta-blocking of SparkER broadcasts
the compact block index to every partition of the blocking-graph nodes.

Under the serial executor the value stays in driver memory; under the
multiprocessing executor it travels inside the stage's pickled function
chain through a registry-backed ``__reduce__``: every broadcast has a
process-wide unique id, and the unpickle hook consults the worker's registry
so each process keeps **one** live copy no matter how many tasks or stages
reference it (a copy inherited by fork is reused the same way).  The value
bytes still ride in the chain payload — deserialised once per worker per
stage thanks to the executor's chain cache, after which the registry lookup
discards the duplicate — so shipping cost scales with workers × stages, not
tasks.  The engine still counts one logical read per ``.value`` access —
worker-side counts are merged back into the driver object by the executor —
so benchmarks can report broadcast traffic.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Any, Generic, TypeVar

T = TypeVar("T")

# Process-wide unique ids: two EngineContexts must never mint the same
# broadcast id, otherwise the worker-side registry would alias their values.
_ids = itertools.count()

# One entry per live broadcast in this process (driver or worker).  Weak so
# that destroyed/collected broadcasts do not pin their values forever.
_registry: "weakref.WeakValueDictionary[int, Broadcast[Any]]" = (
    weakref.WeakValueDictionary()
)


def new_broadcast(value: T) -> "Broadcast[T]":
    """Create a broadcast with a fresh process-wide id and register it."""
    broadcast = Broadcast(next(_ids), value)
    _registry[broadcast.id] = broadcast
    return broadcast


def _rebuild(broadcast_id: int, value: Any) -> "Broadcast[Any]":
    """Unpickle hook: reuse the process-local copy when one already exists."""
    existing = _registry.get(broadcast_id)
    if existing is not None and not existing._destroyed:
        return existing
    broadcast = Broadcast(broadcast_id, value)
    _registry[broadcast_id] = broadcast
    return broadcast


def snapshot_access_counts() -> dict[int, int]:
    """Current per-broadcast read counts of this process (for task capture)."""
    return {broadcast_id: b.access_count for broadcast_id, b in _registry.items()}


def access_count_delta(baseline: dict[int, int]) -> dict[int, int]:
    """Reads performed since ``baseline`` (only broadcasts actually read)."""
    delta: dict[int, int] = {}
    for broadcast_id, broadcast in _registry.items():
        reads = broadcast.access_count - baseline.get(broadcast_id, 0)
        if reads > 0:
            delta[broadcast_id] = reads
    return delta


class Broadcast(Generic[T]):
    """A read-only value shared by all tasks of a job."""

    def __init__(self, broadcast_id: int, value: T) -> None:
        self._id = broadcast_id
        self._value = value
        self._destroyed = False
        self.access_count = 0

    @property
    def id(self) -> int:
        return self._id

    @property
    def value(self) -> T:
        """Return the broadcast value (raises if the broadcast was destroyed)."""
        if self._destroyed:
            raise ValueError(f"Broadcast {self._id} was destroyed")
        self.access_count += 1
        return self._value

    def destroy(self) -> None:
        """Release the broadcast value."""
        self._destroyed = True
        self._value = None  # type: ignore[assignment]

    def __reduce__(self):
        if self._destroyed:
            raise ValueError(f"Broadcast {self._id} was destroyed and cannot be shipped")
        return (_rebuild, (self._id, self._value))

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else "live"
        return f"Broadcast(id={self._id}, {state})"
