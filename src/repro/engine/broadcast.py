"""Broadcast variables.

In Spark a broadcast variable ships a read-only value to every executor once
instead of with every task.  The parallel meta-blocking of SparkER broadcasts
the compact block index to every partition of the blocking-graph nodes.  Here
the value stays in process memory, but the engine still counts one logical
"shipment" per partition that reads it, so benchmarks can report broadcast
volume.
"""

from __future__ import annotations

from typing import Generic, TypeVar

T = TypeVar("T")


class Broadcast(Generic[T]):
    """A read-only value shared by all tasks of a job."""

    def __init__(self, broadcast_id: int, value: T) -> None:
        self._id = broadcast_id
        self._value = value
        self._destroyed = False
        self.access_count = 0

    @property
    def id(self) -> int:
        return self._id

    @property
    def value(self) -> T:
        """Return the broadcast value (raises if the broadcast was destroyed)."""
        if self._destroyed:
            raise ValueError(f"Broadcast {self._id} was destroyed")
        self.access_count += 1
        return self._value

    def destroy(self) -> None:
        """Release the broadcast value."""
        self._destroyed = True
        self._value = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else "live"
        return f"Broadcast(id={self._id}, {state})"
