"""Accumulators: write-only shared counters, as in Spark.

The blocker uses accumulators to count, e.g., how many comparisons each stage
would perform without materialising them.
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar

T = TypeVar("T")


class Accumulator(Generic[T]):
    """A commutative, associative counter updated from tasks.

    Parameters
    ----------
    initial:
        Starting value (also the identity of ``combine``).
    combine:
        Binary function folding a task-side update into the current value.
        Defaults to ``+``.
    """

    def __init__(
        self,
        accumulator_id: int,
        initial: T,
        combine: Callable[[T, T], T] | None = None,
    ) -> None:
        self._id = accumulator_id
        self._value = initial
        self._combine = combine if combine is not None else lambda a, b: a + b  # type: ignore[operator]

    @property
    def id(self) -> int:
        return self._id

    @property
    def value(self) -> T:
        """Current accumulated value (driver-side read)."""
        return self._value

    def add(self, update: T) -> None:
        """Fold ``update`` into the accumulator."""
        self._value = self._combine(self._value, update)

    def __iadd__(self, update: T) -> "Accumulator[T]":
        self.add(update)
        return self

    def __repr__(self) -> str:
        return f"Accumulator(id={self._id}, value={self._value!r})"
