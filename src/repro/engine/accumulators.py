"""Accumulators: write-only shared counters, as in Spark.

The blocker uses accumulators to count, e.g., how many comparisons each stage
would perform without materialising them.

Under the serial executor tasks mutate the driver-side accumulator directly.
Under the multiprocessing executor an accumulator travels to the worker
inside the stage's pickled function chain, where it rebuilds as a task-side
replica that records every ``add`` argument; the executor returns the
recorded updates and the driver replays them on the original accumulator in
partition order — the exact same sequence of ``combine`` applications a
serial run performs, so merged values (including float sums) are identical.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generic, TypeVar

T = TypeVar("T")

# Process-wide unique ids, for the same reason broadcasts use them: the
# task-side capture keys updates by accumulator id across all contexts.
_ids = itertools.count()

# Active per-task capture of update arguments, keyed by accumulator id.
# ``None`` outside a captured task (driver-side adds are applied directly).
_capture: dict[int, list[Any]] | None = None


def _sum_combine(a: Any, b: Any) -> Any:
    """The default combine (module-level so accumulators stay picklable)."""
    return a + b


def new_accumulator(
    initial: T, combine: Callable[[T, T], T] | None = None
) -> "Accumulator[T]":
    """Create an accumulator with a fresh process-wide id."""
    return Accumulator(next(_ids), initial, combine)


def begin_task_capture() -> None:
    """Start recording task-side accumulator updates (executor workers only)."""
    global _capture
    _capture = {}


def end_task_capture() -> dict[int, list[Any]]:
    """Stop recording and return the captured ``add`` arguments per id."""
    global _capture
    captured, _capture = _capture, None
    return captured or {}


def _rebuild(
    accumulator_id: int, initial: Any, combine: Callable[[Any, Any], Any]
) -> "_TaskSideAccumulator":
    return _TaskSideAccumulator(accumulator_id, initial, combine)


class Accumulator(Generic[T]):
    """A commutative, associative counter updated from tasks.

    Parameters
    ----------
    initial:
        Starting value (also the identity of ``combine``).
    combine:
        Binary function folding a task-side update into the current value.
        Defaults to ``+``.  Must be picklable (a module-level function) for
        the accumulator to be usable under the multiprocessing executor.
    """

    def __init__(
        self,
        accumulator_id: int,
        initial: T,
        combine: Callable[[T, T], T] | None = None,
    ) -> None:
        self._id = accumulator_id
        self._initial = initial
        self._value = initial
        self._combine = combine if combine is not None else _sum_combine

    @property
    def id(self) -> int:
        return self._id

    @property
    def value(self) -> T:
        """Current accumulated value (driver-side read)."""
        return self._value

    def add(self, update: T) -> None:
        """Fold ``update`` into the accumulator."""
        self._value = self._combine(self._value, update)

    def __iadd__(self, update: T) -> "Accumulator[T]":
        self.add(update)
        return self

    def __reduce__(self):
        return (_rebuild, (self._id, self._initial, self._combine))

    def __repr__(self) -> str:
        return f"Accumulator(id={self._id}, value={self._value!r})"


class _TaskSideAccumulator(Accumulator[Any]):
    """Worker-side replica: records update arguments for driver-side replay."""

    def add(self, update: Any) -> None:
        super().add(update)
        if _capture is not None:
            _capture.setdefault(self._id, []).append(update)
