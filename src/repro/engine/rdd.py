"""A partitioned, lazily evaluated, lineage-tracked dataset (RDD).

The RDD implements the subset of the Spark RDD API that SparkER's algorithms
use.  Transformations build a lineage graph; nothing executes until an action
(``collect``, ``count``, ``reduce`` ...) is called.  Materialised partitions
are memoised on the RDD, which mirrors Spark's ``cache()`` and keeps repeated
actions cheap (every dataset in this reproduction fits in memory).  Chains of
narrow transformations are *fused* at compute time, so only RDDs that were
explicitly ``cache()``d or already materialised by an action act as
memoisation barriers: an intermediate narrow RDD shared by two lineages is
recomputed per action unless cached — the same contract Spark has.

Narrow transformations (``map``, ``filter`` ...) run partition-by-partition
without moving data.  Wide transformations (``reduceByKey``, ``groupByKey``,
``join`` ...) shuffle records through :mod:`repro.engine.shuffle` using a
:class:`~repro.engine.partitioner.HashPartitioner`: a map stage buckets (and
map-side combines) each parent partition, a reduce stage merges each bucket
across map outputs, and both stages dispatch through the context's executor —
in worker processes under ``executor="process:N"``.  The shuffle volume
(records and pickled wire bytes) is recorded per task by the scheduler so
scalability benchmarks can report it.
"""

from __future__ import annotations

import operator
import time
from collections import defaultdict
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any, TYPE_CHECKING

from repro.engine.partitioner import HashPartitioner, Partitioner
from repro.engine.shuffle import (
    CoGroupReduceTask,
    ConcatReduceTask,
    GroupByKeyTask,
    MapSideCombiner,
    ReduceByKeyTask,
    ShuffleReduceTask,
    ZeroSeededCombiner,
    execute_shuffle,
)
from repro.exceptions import EngineError
from repro.utils.hashing import stable_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.engine.context import EngineContext
    from repro.engine.executors import TaskOutcome


# --------------------------------------------------------------- stage functions
# The per-partition functions of narrow transformations are module-level
# callable classes (not closures) so a fused function chain pickles and can be
# shipped to worker processes by the multiprocessing executor.  Whether a
# chain is actually shippable then only depends on the *user* function it
# wraps being picklable.


class _ElementFunc:
    """Base for per-partition functions wrapping one user function.

    Slots-only classes pickle natively under protocol 2+, so no custom
    ``__getstate__`` is needed here or in the subclasses.
    """

    __slots__ = ("func",)

    def __init__(self, func: Callable[..., Any]) -> None:
        self.func = func

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.func!r})"


class _MapFunc(_ElementFunc):
    def __call__(self, _index: int, it: Iterator[Any]) -> Iterable[Any]:
        func = self.func
        return (func(x) for x in it)


class _FlatMapFunc(_ElementFunc):
    def __call__(self, _index: int, it: Iterator[Any]) -> Iterable[Any]:
        func = self.func
        return (y for x in it for y in func(x))


class _FilterFunc(_ElementFunc):
    def __call__(self, _index: int, it: Iterator[Any]) -> Iterable[Any]:
        predicate = self.func
        return (x for x in it if predicate(x))


class _PartitionFunc(_ElementFunc):
    """mapPartitions: the user function sees the iterator, not the index."""

    def __call__(self, _index: int, it: Iterator[Any]) -> Iterable[Any]:
        return self.func(it)


class _KeyByFunc(_ElementFunc):
    def __call__(self, x: Any) -> tuple[Any, Any]:
        return (self.func(x), x)


class _MapValuesFunc(_ElementFunc):
    def __call__(self, kv: tuple[Any, Any]) -> tuple[Any, Any]:
        return (kv[0], self.func(kv[1]))


class _FlatMapValuesFunc(_ElementFunc):
    def __call__(self, kv: tuple[Any, Any]) -> Iterable[tuple[Any, Any]]:
        key, value = kv
        return ((key, v) for v in self.func(value))


def _pair_with_none(x: Any) -> tuple[Any, None]:
    return (x, None)


def _keep_first(a: Any, _b: Any) -> Any:
    return a


class _SampleFunc:
    """Deterministic sampling filter (seed and threshold bound at creation)."""

    __slots__ = ("seed", "threshold")

    def __init__(self, seed: int, threshold: int) -> None:
        self.seed = seed
        self.threshold = threshold

    def __call__(self, index: int, it: Iterator[Any]) -> Iterator[Any]:
        seed, threshold = self.seed, self.threshold
        for position, element in enumerate(it):
            if stable_hash((seed, index, position)) % (2**32) < threshold:
                yield element


class RDD:
    """Base class of all RDDs.

    Subclasses implement :meth:`_compute`, returning the list of materialised
    partitions.  User code only uses the transformation / action methods.
    """

    def __init__(self, context: "EngineContext", num_partitions: int, name: str) -> None:
        if num_partitions <= 0:
            raise EngineError("an RDD must have at least one partition")
        self.context = context
        self.num_partitions = num_partitions
        self.name = name
        self._materialized: list[list[Any]] | None = None
        # Filled by executor-backed subclasses so the recorded stage carries
        # real per-task wall-clock and worker identity instead of an even split.
        self._stage_executor: str | None = None
        self._task_outcomes: "list[TaskOutcome] | None" = None

    # ------------------------------------------------------------------ core
    def _compute(self) -> list[list[Any]]:
        raise NotImplementedError

    def partitions(self) -> list[list[Any]]:
        """Materialise (once) and return the list of partitions."""
        if self._materialized is None:
            start = time.perf_counter()
            partitions = self._compute()
            elapsed = time.perf_counter() - start
            stage = self.context.scheduler.new_stage(
                self.name,
                fused_stages=getattr(self, "_fused_stages", 1),
                executor=self._stage_executor or "driver",
            )
            outcomes = self._task_outcomes
            per_task = elapsed / max(len(partitions), 1)
            for index, partition in enumerate(partitions):
                if outcomes is not None and index < len(outcomes):
                    task_elapsed = outcomes[index].elapsed_seconds
                    worker = outcomes[index].worker
                    attempts = outcomes[index].attempts
                    failures = outcomes[index].failures
                    max_rss = outcomes[index].max_rss_bytes
                else:
                    task_elapsed, worker = per_task, "driver"
                    attempts, failures, max_rss = 1, 0, 0
                self.context.scheduler.record_task(
                    stage,
                    index,
                    output_records=len(partition),
                    elapsed_seconds=task_elapsed,
                    worker=worker,
                    attempts=attempts,
                    failures=failures,
                    max_rss_bytes=max_rss,
                )
            self._materialized = partitions
            self._task_outcomes = None
        return self._materialized

    def cache(self) -> "RDD":
        """Materialise now and keep the result (Spark ``cache``/``persist``)."""
        self.partitions()
        return self

    def unpersist(self) -> "RDD":
        """Drop memoised partitions; the lineage can recompute them."""
        self._materialized = None
        return self

    # -------------------------------------------------- narrow transformations
    def map(self, func: Callable[[Any], Any], name: str | None = None) -> "RDD":
        """Apply ``func`` to every element."""
        return MappedPartitionsRDD(self, _MapFunc(func), name or f"{self.name}.map")

    def flatMap(self, func: Callable[[Any], Iterable[Any]], name: str | None = None) -> "RDD":
        """Apply ``func`` to every element and flatten the results."""
        return MappedPartitionsRDD(
            self, _FlatMapFunc(func), name or f"{self.name}.flatMap"
        )

    def filter(self, predicate: Callable[[Any], bool], name: str | None = None) -> "RDD":
        """Keep only the elements for which ``predicate`` is true."""
        return MappedPartitionsRDD(
            self, _FilterFunc(predicate), name or f"{self.name}.filter"
        )

    def mapPartitions(
        self, func: Callable[[Iterator[Any]], Iterable[Any]], name: str | None = None
    ) -> "RDD":
        """Apply ``func`` to the iterator of each partition."""
        return MappedPartitionsRDD(
            self, _PartitionFunc(func), name or f"{self.name}.mapPartitions"
        )

    def mapPartitionsWithIndex(
        self,
        func: Callable[[int, Iterator[Any]], Iterable[Any]],
        name: str | None = None,
    ) -> "RDD":
        """Apply ``func`` to (partition index, iterator of each partition)."""
        return MappedPartitionsRDD(
            self, func, name or f"{self.name}.mapPartitionsWithIndex"
        )

    def keyBy(self, func: Callable[[Any], Any]) -> "RDD":
        """Turn each element ``x`` into ``(func(x), x)``."""
        return self.map(_KeyByFunc(func), name=f"{self.name}.keyBy")

    def mapValues(self, func: Callable[[Any], Any]) -> "RDD":
        """Apply ``func`` to the value of each ``(key, value)`` pair."""
        return self.map(_MapValuesFunc(func), name=f"{self.name}.mapValues")

    def flatMapValues(self, func: Callable[[Any], Iterable[Any]]) -> "RDD":
        """Apply ``func`` to each value and emit one pair per produced element."""
        return self.flatMap(_FlatMapValuesFunc(func), name=f"{self.name}.flatMapValues")

    def keys(self) -> "RDD":
        """Project the keys of a pair RDD."""
        return self.map(operator.itemgetter(0), name=f"{self.name}.keys")

    def values(self) -> "RDD":
        """Project the values of a pair RDD."""
        return self.map(operator.itemgetter(1), name=f"{self.name}.values")

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two RDDs (partitions are concatenated, no shuffle)."""
        return UnionRDD(self, other)

    def zipWithIndex(self) -> "RDD":
        """Pair every element with its global index (stable across runs)."""
        return ZipWithIndexRDD(self)

    def sample(self, fraction: float, seed: int = 17) -> "RDD":
        """Deterministically sample a fraction of elements (without replacement)."""
        if not 0.0 <= fraction <= 1.0:
            raise EngineError("fraction must be in [0, 1]")
        threshold = int(fraction * (2**32))
        return MappedPartitionsRDD(self, _SampleFunc(seed, threshold), f"{self.name}.sample")

    # ---------------------------------------------------- wide transformations
    def distinct(self, num_partitions: int | None = None) -> "RDD":
        """Remove duplicate elements (requires hashable elements)."""
        paired = self.map(_pair_with_none, name=f"{self.name}.distinct.pair")
        reduced = paired.reduceByKey(_keep_first, num_partitions=num_partitions)
        return reduced.keys()

    def partitionBy(self, partitioner: Partitioner) -> "RDD":
        """Shuffle a pair RDD so each key lands on ``partitioner.partition(key)``."""
        return ShuffledRDD(
            self, partitioner, ConcatReduceTask(), name=f"{self.name}.partitionBy"
        )

    def repartition(self, num_partitions: int) -> "RDD":
        """Redistribute elements round-robin over ``num_partitions`` partitions."""
        return RepartitionedRDD(self, num_partitions)

    def reduceByKey(
        self,
        reducer: Callable[[Any, Any], Any],
        num_partitions: int | None = None,
    ) -> "RDD":
        """Combine the values of each key with ``reducer`` (with map-side combine)."""
        partitioner = HashPartitioner(num_partitions or self.num_partitions)
        return ShuffledRDD(
            self,
            partitioner,
            ReduceByKeyTask(reducer),
            combiner=MapSideCombiner(reducer),
            name=f"{self.name}.reduceByKey",
        )

    def groupByKey(self, num_partitions: int | None = None) -> "RDD":
        """Group the values of each key into a list."""
        partitioner = HashPartitioner(num_partitions or self.num_partitions)
        return ShuffledRDD(
            self,
            partitioner,
            GroupByKeyTask(),
            name=f"{self.name}.groupByKey",
        )

    def aggregateByKey(
        self,
        zero: Any,
        seq_op: Callable[[Any, Any], Any],
        comb_op: Callable[[Any, Any], Any],
        num_partitions: int | None = None,
    ) -> "RDD":
        """Aggregate values per key with distinct within/between partition ops."""
        partitioner = HashPartitioner(num_partitions or self.num_partitions)
        return ShuffledRDD(
            self,
            partitioner,
            ReduceByKeyTask(comb_op),
            combiner=MapSideCombiner(seq_op, create=ZeroSeededCombiner(zero, seq_op)),
            name=f"{self.name}.aggregateByKey",
        )

    def cogroup(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Group both RDDs by key: ``(key, (values_self, values_other))``."""
        return CoGroupedRDD(self, other, num_partitions)

    def join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Inner join of two pair RDDs: ``(key, (value_self, value_other))``."""
        def expand(kv: tuple[Any, tuple[list[Any], list[Any]]]) -> Iterator[tuple[Any, tuple[Any, Any]]]:
            key, (left_values, right_values) = kv
            for left in left_values:
                for right in right_values:
                    yield key, (left, right)

        return self.cogroup(other, num_partitions).flatMap(expand, name=f"{self.name}.join")

    def leftOuterJoin(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Left outer join: missing right values become ``None``."""
        def expand(kv: tuple[Any, tuple[list[Any], list[Any]]]) -> Iterator[tuple[Any, tuple[Any, Any]]]:
            key, (left_values, right_values) = kv
            for left in left_values:
                if right_values:
                    for right in right_values:
                        yield key, (left, right)
                else:
                    yield key, (left, None)

        return self.cogroup(other, num_partitions).flatMap(
            expand, name=f"{self.name}.leftOuterJoin"
        )

    def subtractByKey(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Keep pairs whose key does not appear in ``other``."""
        def keep(kv: tuple[Any, tuple[list[Any], list[Any]]]) -> Iterator[tuple[Any, Any]]:
            key, (left_values, right_values) = kv
            if not right_values:
                for left in left_values:
                    yield key, left

        return self.cogroup(other, num_partitions).flatMap(
            keep, name=f"{self.name}.subtractByKey"
        )

    def sortBy(self, key_func: Callable[[Any], Any], ascending: bool = True) -> "RDD":
        """Globally sort the RDD by ``key_func`` (single output partition)."""
        return SortedRDD(self, key_func, ascending)

    # ------------------------------------------------------------------ actions
    def collect(self) -> list[Any]:
        """Return all elements as a list."""
        self.context.scheduler.start_job(f"collect({self.name})")
        try:
            return [element for partition in self.partitions() for element in partition]
        finally:
            self.context.scheduler.finish_job()

    def collectAsMap(self) -> dict[Any, Any]:
        """Collect a pair RDD into a dict (last value wins for duplicate keys)."""
        return dict(self.collect())

    def count(self) -> int:
        """Return the number of elements."""
        self.context.scheduler.start_job(f"count({self.name})")
        try:
            return sum(len(partition) for partition in self.partitions())
        finally:
            self.context.scheduler.finish_job()

    def countByKey(self) -> dict[Any, int]:
        """Count elements per key of a pair RDD."""
        counts: dict[Any, int] = defaultdict(int)
        for key, _value in self.collect():
            counts[key] += 1
        return dict(counts)

    def countByValue(self) -> dict[Any, int]:
        """Count occurrences of each distinct element."""
        counts: dict[Any, int] = defaultdict(int)
        for element in self.collect():
            counts[element] += 1
        return dict(counts)

    def reduce(self, reducer: Callable[[Any, Any], Any]) -> Any:
        """Fold all elements with ``reducer`` (raises on an empty RDD)."""
        elements = self.collect()
        if not elements:
            raise EngineError("reduce() of an empty RDD")
        result = elements[0]
        for element in elements[1:]:
            result = reducer(result, element)
        return result

    def fold(self, zero: Any, op: Callable[[Any, Any], Any]) -> Any:
        """Fold all elements starting from ``zero``."""
        result = zero
        for element in self.collect():
            result = op(result, element)
        return result

    def take(self, n: int) -> list[Any]:
        """Return the first ``n`` elements (partition order)."""
        taken: list[Any] = []
        for partition in self.partitions():
            for element in partition:
                if len(taken) >= n:
                    return taken
                taken.append(element)
        return taken

    def first(self) -> Any:
        """Return the first element (raises on an empty RDD)."""
        elements = self.take(1)
        if not elements:
            raise EngineError("first() of an empty RDD")
        return elements[0]

    def top(self, n: int, key: Callable[[Any], Any] | None = None) -> list[Any]:
        """Return the ``n`` largest elements."""
        return sorted(self.collect(), key=key, reverse=True)[:n]

    def sum(self) -> Any:
        """Sum all elements."""
        return sum(self.collect())

    def isEmpty(self) -> bool:
        """True if the RDD has no elements."""
        return not self.take(1)

    def foreach(self, func: Callable[[Any], None]) -> None:
        """Apply ``func`` to every element for its side effects."""
        for element in self.collect():
            func(element)

    def getNumPartitions(self) -> int:
        """Number of partitions of this RDD."""
        return self.num_partitions

    def glom(self) -> list[list[Any]]:
        """Return the materialised partitions (Spark's ``glom().collect()``)."""
        return [list(partition) for partition in self.partitions()]

    def __repr__(self) -> str:
        return f"RDD({self.name}, partitions={self.num_partitions})"


class ParallelCollectionRDD(RDD):
    """An RDD created from a driver-side Python collection."""

    def __init__(self, context: "EngineContext", data: Sequence[Any], num_partitions: int) -> None:
        super().__init__(context, num_partitions, "parallelize")
        self._data = list(data)

    def _compute(self) -> list[list[Any]]:
        partitions: list[list[Any]] = [[] for _ in range(self.num_partitions)]
        total = len(self._data)
        if total == 0:
            return partitions
        # Contiguous slicing, like Spark's parallelize.
        base, extra = divmod(total, self.num_partitions)
        start = 0
        for index in range(self.num_partitions):
            size = base + (1 if index < extra else 0)
            partitions[index] = self._data[start : start + size]
            start += size
        return partitions


class MappedPartitionsRDD(RDD):
    """Narrow transformation: apply a function to each parent partition.

    At compute time, consecutive unmaterialised narrow transformations are
    *fused* into one physical stage: the chain of per-partition functions is
    composed and pipelined over the source partitions without materialising
    any intermediate list, mirroring Spark's pipelined narrow stages.  A
    parent that is already materialised (via ``cache()`` or a prior action)
    acts as a fusion barrier and is reused as-is.

    The fused chain runs on the context's executor — in the driver under the
    serial executor, or shipped to worker processes under the multiprocessing
    executor, whose task-side accumulator updates and broadcast reads are
    merged back into the driver objects before the stage result is returned.
    """

    def __init__(
        self,
        parent: RDD,
        func: Callable[[int, Iterator[Any]], Iterable[Any]],
        name: str,
    ) -> None:
        super().__init__(parent.context, parent.num_partitions, name)
        self._parent = parent
        self._func = func
        self._fused_stages = 1

    def _fused_chain(self) -> tuple[RDD, list[Callable[[int, Iterator[Any]], Iterable[Any]]]]:
        """Walk up the lineage collecting the fusable narrow-function chain."""
        funcs = [self._func]
        node = self._parent
        while isinstance(node, MappedPartitionsRDD) and node._materialized is None:
            funcs.append(node._func)
            node = node._parent
        funcs.reverse()
        return node, funcs

    def _compute(self) -> list[list[Any]]:
        source, funcs = self._fused_chain()
        self._fused_stages = len(funcs)
        result = self.context.executor.run_stage(
            funcs, source.partitions(), name=self.name
        )
        self._stage_executor = result.executor
        self._task_outcomes = result.tasks
        self.context.merge_stage_result(result)
        return result.partitions


class UnionRDD(RDD):
    """Concatenation of two RDDs; partition lists are concatenated."""

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(
            left.context,
            left.num_partitions + right.num_partitions,
            f"union({left.name},{right.name})",
        )
        self._left = left
        self._right = right

    def _compute(self) -> list[list[Any]]:
        return [list(p) for p in self._left.partitions()] + [
            list(p) for p in self._right.partitions()
        ]


class ZipWithIndexRDD(RDD):
    """Pairs every element with a global, stable index."""

    def __init__(self, parent: RDD) -> None:
        super().__init__(parent.context, parent.num_partitions, f"{parent.name}.zipWithIndex")
        self._parent = parent

    def _compute(self) -> list[list[Any]]:
        result: list[list[Any]] = []
        offset = 0
        for partition in self._parent.partitions():
            indexed = [(element, offset + i) for i, element in enumerate(partition)]
            offset += len(partition)
            result.append(indexed)
        return result


class RepartitionedRDD(RDD):
    """Round-robin redistribution of elements across a new partition count."""

    def __init__(self, parent: RDD, num_partitions: int) -> None:
        super().__init__(parent.context, num_partitions, f"{parent.name}.repartition")
        self._parent = parent

    def _compute(self) -> list[list[Any]]:
        partitions: list[list[Any]] = [[] for _ in range(self.num_partitions)]
        index = 0
        for partition in self._parent.partitions():
            for element in partition:
                partitions[index % self.num_partitions].append(element)
                index += 1
        return partitions


class ShuffledRDD(RDD):
    """Wide transformation: hash-shuffle a pair RDD through the executor layer.

    The shuffle runs as two executor-dispatched stages (see
    :func:`repro.engine.shuffle.execute_shuffle`): map tasks bucket and
    optionally pre-combine each parent partition, reduce tasks merge each
    bucket's chunks across the map outputs.  Under a process executor both
    phases run in worker processes; under the serial executor the result is
    byte-identical to the historical in-driver shuffle.
    """

    def __init__(
        self,
        parent: RDD,
        partitioner: Partitioner,
        reduce_task: ShuffleReduceTask,
        combiner: MapSideCombiner | None = None,
        name: str = "shuffled",
    ) -> None:
        super().__init__(parent.context, partitioner.num_partitions, name)
        self._parent = parent
        self._partitioner = partitioner
        self._reduce_task = reduce_task
        self._combiner = combiner

    def _compute(self) -> list[list[Any]]:
        return execute_shuffle(
            self.context,
            self._partitioner,
            [(self._parent.partitions(), self._combiner)],
            self._reduce_task,
            f"{self.name}.shuffle",
        )


class CoGroupedRDD(RDD):
    """Groups two pair RDDs by key into ``(key, (values_left, values_right))``.

    A two-sided shuffle: one map stage per parent, one reduce stage merging
    each bucket's tagged chunks (left side first), all dispatched through the
    executor layer.
    """

    def __init__(self, left: RDD, right: RDD, num_partitions: int | None) -> None:
        partitions = num_partitions or max(left.num_partitions, right.num_partitions)
        super().__init__(left.context, partitions, f"cogroup({left.name},{right.name})")
        self._left = left
        self._right = right
        self._partitioner = HashPartitioner(partitions)

    def _compute(self) -> list[list[Any]]:
        return execute_shuffle(
            self.context,
            self._partitioner,
            [(self._left.partitions(), None), (self._right.partitions(), None)],
            CoGroupReduceTask(),
            f"{self.name}.shuffle",
        )


class SortedRDD(RDD):
    """Globally sorted view of the parent, materialised as one partition."""

    def __init__(self, parent: RDD, key_func: Callable[[Any], Any], ascending: bool) -> None:
        super().__init__(parent.context, 1, f"{parent.name}.sortBy")
        self._parent = parent
        self._key_func = key_func
        self._ascending = ascending

    def _compute(self) -> list[list[Any]]:
        elements = [e for partition in self._parent.partitions() for e in partition]
        elements.sort(key=self._key_func, reverse=not self._ascending)
        return [elements]
