"""Task, stage and job level execution metrics.

The engine records the same quantities a Spark UI exposes: per-task input and
output record counts, shuffle read/write volume (records *and* pickled wire
bytes — the real IPC cost of a process-executor shuffle) and elapsed time.
The scalability benchmark uses these to report task-count, shuffle-volume and
skew figures for the parallel meta-blocking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class TaskMetrics:
    """Metrics of one task (the execution of one partition of one stage).

    ``worker`` identifies where the task ran: ``"driver"`` for in-process
    execution, ``"pid-<n>"`` for a multiprocessing-executor worker.
    ``attempts`` counts execution attempts including the successful one and
    ``failures`` the failed attempts before it (crashes, timeouts, task
    exceptions recovered by the executor's fault policy); a clean task has
    ``attempts == 1, failures == 0`` and a *recovered* task has
    ``failures > 0``.

    On shuffle map tasks the total payload volume ``shuffle_write_bytes``
    is additionally split by *route*: ``shuffle_relay_bytes`` crossed the
    driver (inline blocks, plus the tiny block refs of the peer stores)
    while ``shuffle_peer_bytes`` moved worker-to-worker through a
    shared-memory segment or spill file, bypassing the driver entirely.

    ``max_rss_bytes`` is the peak resident set size of the process that ran
    the task, sampled as the task finished (``getrusage`` high-water mark;
    0 when the platform cannot report it).  It is a *process-lifetime*
    maximum, not a per-task delta — the figure the out-of-core scale guard
    compares against its RSS ceiling.
    """

    stage_id: int
    partition_index: int
    input_records: int = 0
    output_records: int = 0
    shuffle_read_records: int = 0
    shuffle_write_records: int = 0
    shuffle_read_bytes: int = 0
    shuffle_write_bytes: int = 0
    shuffle_relay_bytes: int = 0
    shuffle_peer_bytes: int = 0
    elapsed_seconds: float = 0.0
    worker: str = "driver"
    attempts: int = 1
    failures: int = 0
    max_rss_bytes: int = 0

    @property
    def recovered(self) -> bool:
        """True when the task failed at least once but still completed."""
        return self.failures > 0


@dataclass
class StageMetrics:
    """Aggregated metrics of a stage (one task per partition).

    ``fused_stages`` counts how many logical narrow transformations executed
    inside this physical stage (pipelined narrow-stage fusion); 1 means the
    stage ran a single transformation.  ``executor`` records which executor
    ran the stage (``driver`` for non-executor stages such as shuffles).
    """

    stage_id: int
    description: str
    tasks: list[TaskMetrics] = field(default_factory=list)
    fused_stages: int = 1
    executor: str = "driver"

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_workers(self) -> int:
        """Distinct workers that ran this stage's tasks."""
        return len({t.worker for t in self.tasks})

    @property
    def total_elapsed(self) -> float:
        return sum(t.elapsed_seconds for t in self.tasks)

    @property
    def total_input_records(self) -> int:
        return sum(t.input_records for t in self.tasks)

    @property
    def total_output_records(self) -> int:
        return sum(t.output_records for t in self.tasks)

    @property
    def total_shuffle_read(self) -> int:
        return sum(t.shuffle_read_records for t in self.tasks)

    @property
    def total_shuffle_write(self) -> int:
        return sum(t.shuffle_write_records for t in self.tasks)

    @property
    def total_shuffle_read_bytes(self) -> int:
        return sum(t.shuffle_read_bytes for t in self.tasks)

    @property
    def total_shuffle_write_bytes(self) -> int:
        return sum(t.shuffle_write_bytes for t in self.tasks)

    @property
    def total_shuffle_relay_bytes(self) -> int:
        """Shuffle bytes that crossed the driver (see :class:`TaskMetrics`)."""
        return sum(t.shuffle_relay_bytes for t in self.tasks)

    @property
    def total_shuffle_peer_bytes(self) -> int:
        """Shuffle bytes that moved peer-to-peer, bypassing the driver."""
        return sum(t.shuffle_peer_bytes for t in self.tasks)

    @property
    def total_attempts(self) -> int:
        """Task execution attempts, including retries (== tasks when clean)."""
        return sum(t.attempts for t in self.tasks)

    @property
    def total_failures(self) -> int:
        """Failed task attempts recovered by retry or serial fallback."""
        return sum(t.failures for t in self.tasks)

    @property
    def num_recovered(self) -> int:
        """Tasks that failed at least once but still completed."""
        return sum(1 for t in self.tasks if t.recovered)

    @property
    def max_rss_bytes(self) -> int:
        """Largest peak-RSS reported by any task of this stage."""
        return max((t.max_rss_bytes for t in self.tasks), default=0)

    @property
    def max_task_records(self) -> int:
        """Largest per-task output — the numerator of the skew ratio."""
        if not self.tasks:
            return 0
        return max(t.output_records for t in self.tasks)

    @property
    def skew(self) -> float:
        """Ratio of the largest task to the mean task (1.0 = perfectly balanced)."""
        if not self.tasks:
            return 0.0
        mean = self.total_output_records / len(self.tasks)
        if mean == 0:
            return 0.0
        return self.max_task_records / mean


class LatencyHistogram:
    """Log-scale latency histogram with streaming percentile estimates.

    Buckets grow geometrically from ``base_seconds`` by ``growth`` per step —
    fine resolution where service latencies live (sub-millisecond to
    seconds), O(1) memory forever, no per-request allocation.  Percentiles
    are read from the bucket boundaries (upper edge of the bucket holding
    the requested rank), so ``p50``/``p95`` are conservative estimates with
    bounded relative error (``growth - 1``), which is exactly what a
    /metrics endpoint needs: stable, monotone, cheap.
    """

    __slots__ = ("base_seconds", "growth", "counts", "count", "total_seconds", "max_seconds")

    def __init__(
        self,
        *,
        base_seconds: float = 1e-5,
        growth: float = 1.5,
        num_buckets: int = 48,
    ) -> None:
        if base_seconds <= 0 or growth <= 1 or num_buckets < 2:
            raise ValueError("invalid latency histogram shape")
        self.base_seconds = base_seconds
        self.growth = growth
        # counts[i] holds observations <= base * growth**i; the last bucket
        # is the unbounded overflow.
        self.counts = [0] * num_buckets
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        """Record one observation (negative durations clamp to zero)."""
        seconds = max(0.0, float(seconds))
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        bound = self.base_seconds
        last = len(self.counts) - 1
        for bucket in range(last):
            if seconds <= bound:
                self.counts[bucket] += 1
                return
            bound *= self.growth
        self.counts[last] += 1

    def quantile(self, q: float) -> float:
        """Upper bucket edge at quantile ``q`` (0 when nothing was observed)."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        bound = self.base_seconds
        last = len(self.counts) - 1
        for bucket, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                return self.max_seconds if bucket == last else bound
            bound *= self.growth
        return self.max_seconds  # pragma: no cover - rank <= count always hits

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """Flat dict for the service /metrics endpoint (seconds)."""
        return {
            "count": self.count,
            "mean": self.mean_seconds,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max_seconds,
        }


@dataclass
class JobMetrics:
    """Metrics of a full job (an action such as ``collect`` or ``count``)."""

    job_id: int
    description: str
    stages: list[StageMetrics] = field(default_factory=list)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def num_tasks(self) -> int:
        return sum(s.num_tasks for s in self.stages)

    @property
    def total_shuffle_records(self) -> int:
        return sum(s.total_shuffle_write for s in self.stages)

    @property
    def total_shuffle_bytes(self) -> int:
        return sum(s.total_shuffle_write_bytes for s in self.stages)

    @property
    def total_shuffle_relay_bytes(self) -> int:
        return sum(s.total_shuffle_relay_bytes for s in self.stages)

    @property
    def total_shuffle_peer_bytes(self) -> int:
        return sum(s.total_shuffle_peer_bytes for s in self.stages)

    @property
    def max_rss_bytes(self) -> int:
        """Largest peak-RSS reported by any task of any stage of this job."""
        return max((s.max_rss_bytes for s in self.stages), default=0)

    def summary(self) -> dict[str, float]:
        """Return a flat summary dictionary suitable for benchmark reports."""
        return {
            "job_id": self.job_id,
            "stages": self.num_stages,
            "tasks": self.num_tasks,
            "shuffle_records": self.total_shuffle_records,
            "shuffle_bytes": self.total_shuffle_bytes,
            "shuffle_relay_bytes": self.total_shuffle_relay_bytes,
            "shuffle_peer_bytes": self.total_shuffle_peer_bytes,
            "max_rss_bytes": self.max_rss_bytes,
            "max_skew": max((s.skew for s in self.stages), default=0.0),
        }
