"""Stage/task bookkeeping for the engine.

The scheduler does not decide *where* tasks run (the executor layer does); it
records *what* ran and *where*: one :class:`StageMetrics` per materialised
RDD plus one per shuffle map/reduce phase, one :class:`TaskMetrics` per
partition (carrying the worker identity and the shuffle records/bytes it
moved), grouped into :class:`JobMetrics` per action.  This is the
information the scalability benchmarks report.
"""

from __future__ import annotations

from repro.engine.metrics import JobMetrics, StageMetrics, TaskMetrics


class Scheduler:
    """Records stages, tasks and jobs executed by an :class:`EngineContext`."""

    def __init__(self) -> None:
        self._next_stage_id = 0
        self._next_job_id = 0
        self.jobs: list[JobMetrics] = []
        self.stages: list[StageMetrics] = []
        self._current_job: JobMetrics | None = None

    # -- jobs ---------------------------------------------------------------
    def start_job(self, description: str) -> JobMetrics:
        """Open a job; stages recorded until :meth:`finish_job` belong to it."""
        job = JobMetrics(job_id=self._next_job_id, description=description)
        self._next_job_id += 1
        self._current_job = job
        self.jobs.append(job)
        return job

    def finish_job(self) -> None:
        """Close the currently open job."""
        self._current_job = None

    # -- stages -------------------------------------------------------------
    def new_stage(
        self, description: str, *, fused_stages: int = 1, executor: str = "driver"
    ) -> StageMetrics:
        """Create a new stage and attach it to the open job (if any).

        ``fused_stages`` records how many logical narrow transformations the
        stage pipelines (see :class:`~repro.engine.metrics.StageMetrics`);
        ``executor`` records where the stage's tasks ran (``driver``,
        ``serial``, ``process[N]`` ...).
        """
        stage = StageMetrics(
            stage_id=self._next_stage_id,
            description=description,
            fused_stages=fused_stages,
            executor=executor,
        )
        self._next_stage_id += 1
        self.stages.append(stage)
        if self._current_job is not None:
            self._current_job.stages.append(stage)
        return stage

    def record_task(
        self,
        stage: StageMetrics,
        partition_index: int,
        *,
        input_records: int = 0,
        output_records: int = 0,
        shuffle_read_records: int = 0,
        shuffle_write_records: int = 0,
        shuffle_read_bytes: int = 0,
        shuffle_write_bytes: int = 0,
        shuffle_relay_bytes: int = 0,
        shuffle_peer_bytes: int = 0,
        elapsed_seconds: float = 0.0,
        worker: str = "driver",
        attempts: int = 1,
        failures: int = 0,
        max_rss_bytes: int = 0,
    ) -> TaskMetrics:
        """Append a task record to ``stage``."""
        task = TaskMetrics(
            stage_id=stage.stage_id,
            partition_index=partition_index,
            input_records=input_records,
            output_records=output_records,
            shuffle_read_records=shuffle_read_records,
            shuffle_write_records=shuffle_write_records,
            shuffle_read_bytes=shuffle_read_bytes,
            shuffle_write_bytes=shuffle_write_bytes,
            shuffle_relay_bytes=shuffle_relay_bytes,
            shuffle_peer_bytes=shuffle_peer_bytes,
            elapsed_seconds=elapsed_seconds,
            worker=worker,
            attempts=attempts,
            failures=failures,
            max_rss_bytes=max_rss_bytes,
        )
        stage.tasks.append(task)
        return task

    # -- summaries ----------------------------------------------------------
    @property
    def total_tasks(self) -> int:
        return sum(stage.num_tasks for stage in self.stages)

    @property
    def total_task_attempts(self) -> int:
        """Task execution attempts across all stages (== tasks when clean)."""
        return sum(stage.total_attempts for stage in self.stages)

    @property
    def total_task_failures(self) -> int:
        """Failed task attempts recovered by retry or serial fallback."""
        return sum(stage.total_failures for stage in self.stages)

    @property
    def total_recovered(self) -> int:
        """Tasks that failed at least once but still completed."""
        return sum(stage.num_recovered for stage in self.stages)

    @property
    def total_shuffle_records(self) -> int:
        return sum(stage.total_shuffle_write for stage in self.stages)

    @property
    def total_shuffle_bytes(self) -> int:
        """Pickled wire bytes written across all shuffle map stages."""
        return sum(stage.total_shuffle_write_bytes for stage in self.stages)

    @property
    def total_shuffle_relay_bytes(self) -> int:
        """Shuffle bytes that crossed the driver (inline payloads + refs)."""
        return sum(stage.total_shuffle_relay_bytes for stage in self.stages)

    @property
    def total_shuffle_peer_bytes(self) -> int:
        """Shuffle bytes that moved peer-to-peer, bypassing the driver."""
        return sum(stage.total_shuffle_peer_bytes for stage in self.stages)

    @property
    def max_rss_bytes(self) -> int:
        """Largest peak-RSS reported by any recorded task (driver or worker)."""
        return max((stage.max_rss_bytes for stage in self.stages), default=0)

    @property
    def total_output_records(self) -> int:
        return sum(stage.total_output_records for stage in self.stages)

    @property
    def total_fused_stages(self) -> int:
        """Logical narrow transformations absorbed into wider physical stages."""
        return sum(max(0, stage.fused_stages - 1) for stage in self.stages)

    def stage_table(self) -> list[dict[str, object]]:
        """Per-stage record/shuffle counters, one row per executed stage.

        This is what the scalability benchmarks print: it shows where records
        are produced, how much of the pipeline was fused into each physical
        stage, and how much data crossed a shuffle boundary.
        """
        return [
            {
                "stage": stage.stage_id,
                "description": stage.description,
                "executor": stage.executor,
                "workers": stage.num_workers,
                "tasks": stage.num_tasks,
                "attempts": stage.total_attempts,
                "failures": stage.total_failures,
                "recovered": stage.num_recovered,
                "fused": stage.fused_stages,
                "records_in": stage.total_input_records,
                "records_out": stage.total_output_records,
                "shuffle_read": stage.total_shuffle_read,
                "shuffle_write": stage.total_shuffle_write,
                "shuffle_read_bytes": stage.total_shuffle_read_bytes,
                "shuffle_write_bytes": stage.total_shuffle_write_bytes,
                "shuffle_relay_bytes": stage.total_shuffle_relay_bytes,
                "shuffle_peer_bytes": stage.total_shuffle_peer_bytes,
                "elapsed_s": round(stage.total_elapsed, 6),
                "max_rss_bytes": stage.max_rss_bytes,
                "skew": round(stage.skew, 3),
            }
            for stage in self.stages
        ]

    def reset(self) -> None:
        """Forget all recorded jobs and stages (keeps id counters monotonic)."""
        self.jobs.clear()
        self.stages.clear()
        self._current_job = None
