"""Generic lifecycle for the engine's POSIX shared-memory segments.

Two subsystems publish ``multiprocessing.shared_memory`` segments: the CSR
index broadcast (:mod:`repro.metablocking.sharedmem`) and the peer-to-peer
shuffle block store (:mod:`repro.engine.shuffle`).  Both need the same
machinery — deterministic naming, resource-tracker-safe attach, idempotent
close/unlink, and a post-crash orphan sweep — so it lives here, below both.

Naming
------
Every engine segment is named ``repro-<kind>-<pid>-<seq>``:

* ``kind`` tags the subsystem (``csr`` for the shared CSR index, ``shuf``
  for shuffle blocks) so sweeps and leak checks can tell them apart;
* ``pid`` is the *creating* process — the driver for a CSR export or a
  serial-executor shuffle, a pool worker for a process-executor shuffle
  block.  The sweep uses it to decide whether a segment can still have a
  live owner;
* ``seq`` is a per-process counter, so retried tasks never reuse a name.

Ownership
---------
Creation and unlinking may happen in *different* processes: a pool worker
creates a shuffle block, the driver unlinks it once the reduce phase has
consumed it.  Three process-local registries arbitrate:

* ``_live_owned`` — names created (and not yet unlinked) by *this* process.
  The sweep never touches an own-pid name that is still registered here.
* ``_protected`` — driver-side set of in-flight shuffle blocks: names whose
  creating worker may already be dead (pool rebuild) but whose payload a
  pending reduce task still needs.  The executor protects names as task
  outcomes arrive (see ``TaskOutcome.published_segments``) and the shuffle
  releases them after the reduce phase.  The sweep skips protected names.
* ``_handles`` — attachment cache (see :func:`cache_attachment`): worker
  processes serving many stages keep a few recent mappings alive instead of
  re-mmapping per stage, and a cached handle defuses the ``BufferError``
  that ``SharedMemory.__del__`` raises while zero-copy views are live.

Sweeping
--------
:func:`sweep_orphaned_segments` unlinks engine segments whose creator is
dead (a crashed worker or a killed previous driver) or whose own-pid
registration was lost (an abandoned export), always skipping protected
names.  It is called by the multiprocessing executor when it discards a
broken pool and again when it closes; every step is best-effort and
idempotent, so concurrent releases never turn into errors.
"""

from __future__ import annotations

import itertools
import os

SEGMENT_FAMILY = "repro"

_segment_ids = itertools.count()

# How many non-owned attachments (beyond the one being attached) a worker
# keeps mapped; older ones are evicted so a long-lived pool serving many
# runs never accumulates mappings.
_KEEP_RECENT_ATTACHMENTS = 2

# Attachment cache, one entry per segment name; values expose ``owner``,
# ``released`` and ``release()`` (e.g. SharedIndexBuffers).
_handles: dict[str, object] = {}

# Names of segments created (and still owned, i.e. not yet unlinked) by this
# process.  See the module docstring for how the sweep consults it.
_live_owned: set[str] = set()

# Driver-side names of in-flight shuffle blocks that must survive a pool
# rebuild even though their creating worker is dead.
_protected: set[str] = set()

# Worker-side capture of segment names published during the current task
# (mirrors the accumulator-update capture): the names ride back to the
# driver on the TaskOutcome so the driver can protect them before any sweep.
_publish_capture: list[str] | None = None


def make_segment_name(kind: str) -> str:
    """A fresh ``repro-<kind>-<pid>-<seq>`` name for this process."""
    if not kind.isalnum():
        raise ValueError(f"segment kind must be alphanumeric, got {kind!r}")
    return f"{SEGMENT_FAMILY}-{kind}-{os.getpid()}-{next(_segment_ids)}"


# ----------------------------------------------------------------- tracking
def attach_untracked(name: str):
    """Attach to a segment without registering it with the resource tracker.

    Only the segment's creator (or the driver, for shuffle blocks) unlinks
    it.  An attaching pool worker that was forked *before* the driver's
    resource tracker started would otherwise spawn its own tracker, record
    the name there, and warn about a "leaked" segment at exit — after the
    segment has long been unlinked.  Python 3.13 exposes this as
    ``track=False``; on earlier versions the registration hook is stubbed
    out for the duration of the attach (workers are single-threaded per
    task, so this is race-free).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = original


def create_untracked(name: str, size: int):
    """Create a segment without a resource-tracker registration.

    Used for shuffle blocks, whose creator (a pool worker) is *not* the
    process that unlinks them (the driver): a tracked creation would leave
    the creator's tracker believing the name leaked once the driver unlinks
    it.  Cleanup of untracked segments is the driver's release path plus
    :func:`sweep_orphaned_segments`.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, create=True, size=size, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    shm = shared_memory.SharedMemory(name=name, create=True, size=size)
    from multiprocessing import resource_tracker

    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    return shm


# ------------------------------------------------------------------ closing
def quiet_close(shm) -> None:
    """Close ``shm`` without tripping over live zero-copy views.

    ``SharedMemory.close()`` raises ``BufferError`` while ndarray views built
    over ``shm.buf`` are alive.  Instead, drop the handle's references and
    close the file descriptor: the memoryview/mmap pair stays referenced by
    the views and is unmapped when the last view dies, and the defused
    ``SharedMemory.__del__`` no-ops instead of spraying ignored exceptions.
    """
    try:
        shm.close()
        return
    except BufferError:
        pass
    shm._buf = None
    shm._mmap = None
    fd = getattr(shm, "_fd", -1)
    if fd >= 0:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover - already closed
            pass
        shm._fd = -1


def release_segment(shm, owner: bool) -> None:
    """Finalizer body: close the mapping, unlink once if we created it.

    Both steps are idempotent: a run-scoped release, a GC finalizer backstop
    and the post-crash orphan sweep can race over the same segment, so a
    mapping already closed or a name already unlinked (by whichever got
    there first) must be a no-op, never an error.
    """
    _handles.pop(shm.name, None)
    if owner:
        _live_owned.discard(shm.name)
    quiet_close(shm)
    if owner:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


def _unlink_balanced(shm) -> None:
    """Unlink an *untracked* handle without confusing the resource tracker.

    On Python < 3.13 ``SharedMemory.unlink()`` unconditionally sends an
    unregister message; for a handle whose registration was suppressed at
    create/attach time that message has no matching entry and the tracker
    logs a ``KeyError``.  Registering just before unlinking balances the
    pair.  Python 3.13 handles created with ``track=False`` skip the
    message entirely and need no balancing.
    """
    if not getattr(shm, "_track", True):
        shm.unlink()
        return
    from multiprocessing import resource_tracker

    try:
        resource_tracker.register(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    shm.unlink()


def unlink_segment(name: str) -> None:
    """Unlink a segment by name from any process (idempotent).

    This is the driver-side release of a worker-published shuffle block: the
    driver never held a handle, so it attaches untracked just long enough to
    unlink.  A name already gone is a no-op.
    """
    _live_owned.discard(name)
    _protected.discard(name)
    handle = _handles.pop(name, None)
    if handle is not None:
        try:
            handle.release()  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - defensive
            pass
    try:
        shm = attach_untracked(name)
    except FileNotFoundError:
        return
    try:
        _unlink_balanced(shm)
    except FileNotFoundError:  # pragma: no cover - released mid-sweep
        pass
    quiet_close(shm)


# ------------------------------------------------------------------- caches
def cache_attachment(name: str, handle) -> None:
    """Cache an attached handle for the process lifetime, evicting old ones.

    A long-lived pool worker sees a handful of fresh segments per run; older
    non-owned attachments are evicted so the cache never pins more than a
    few mappings.  Evicted handles only drop *this* reference — views handed
    out earlier keep their mmap alive until they die, and a same-name
    re-attach simply maps again.
    """
    stale = [
        key
        for key, cached in _handles.items()
        if not getattr(cached, "owner", False) and key != name
    ]
    for key in stale[: -_KEEP_RECENT_ATTACHMENTS or None]:
        _handles.pop(key).release()  # type: ignore[attr-defined]
    _handles[name] = handle


def cached_attachment(name: str):
    """The cached live handle for ``name``, or ``None``."""
    cached = _handles.get(name)
    if cached is not None and not getattr(cached, "released", False):
        return cached
    return None


def register_owned(name: str) -> None:
    """Record that this process created ``name`` and has not unlinked it."""
    _live_owned.add(name)


# --------------------------------------------------------------- protection
def protect_segments(names) -> None:
    """Shield in-flight shuffle blocks from the orphan sweep (driver-side)."""
    _protected.update(names)


def unprotect_segments(names) -> None:
    """Drop the sweep shield once the blocks have been consumed."""
    _protected.difference_update(names)


# ---------------------------------------------------------- publish capture
def begin_publish_capture() -> None:
    """Start recording segment names published by the current task."""
    global _publish_capture
    _publish_capture = []


def end_publish_capture() -> list[str]:
    """Stop recording; return the names published since ``begin``."""
    global _publish_capture
    captured, _publish_capture = _publish_capture, None
    return captured or []


def record_published(name: str) -> bool:
    """Note a published segment in the active capture.

    Returns ``True`` when a capture is active (worker task — the name rides
    back on the task outcome and ownership transfers to the driver) and
    ``False`` otherwise (driver-side publish — the caller should register
    ownership locally instead).
    """
    if _publish_capture is None:
        return False
    _publish_capture.append(name)
    return True


# ------------------------------------------------------------------- sweeps
def sweep_orphaned_segments() -> list[str]:
    """Unlink orphaned engine segments; returns the swept names.

    Called by the multiprocessing executor when it rebuilds a pool after a
    worker crash and again when it closes.  Two kinds of orphans are swept:

    * own-pid segments that are no longer in the live-owner registry — an
      export abandoned without release whose finalizer never ran (e.g.
      state torn by a crashed fork);
    * segments of a *dead* process — a crashed pool worker, or a previous
      driver killed before its run-scoped release or exit backstop could
      unlink.

    Names in the protected set (in-flight shuffle blocks whose creating
    worker died but whose payload a pending reduce still needs) and
    segments of other live processes are always left alone, so concurrent
    runs on one machine never sweep each other.  Everything is best-effort
    and idempotent: a name unlinked by the owner between listing and
    sweeping is skipped silently.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-POSIX platforms
        return []
    own_pid = os.getpid()
    swept: list[str] = []
    for entry in sorted(os.listdir(shm_dir)):
        if not entry.startswith(f"{SEGMENT_FAMILY}-"):
            continue
        try:
            pid = int(entry.split("-")[2])
        except (IndexError, ValueError):  # pragma: no cover - foreign name
            continue
        if entry in _protected:
            continue
        if pid == own_pid:
            if entry in _live_owned:
                continue
        else:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                pass  # owner is dead: the segment is an orphan
            except PermissionError:  # pragma: no cover - alive, other user
                continue
            else:
                continue  # owner still alive: not ours to sweep
        try:
            os.unlink(os.path.join(shm_dir, entry))
        except FileNotFoundError:  # pragma: no cover - released mid-sweep
            continue
        except OSError:  # pragma: no cover - defensive
            continue
        _handles.pop(entry, None)
        swept.append(entry)
    return swept


def live_segments(kind: str | None = None) -> list[str]:
    """Names of this process's engine segments still present in /dev/shm.

    Test helper for the no-leak guarantee; ``kind`` restricts to one
    subsystem (``"csr"``, ``"shuf"``).  Returns an empty list on platforms
    without a /dev/shm view of POSIX shared memory.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-POSIX platforms
        return []
    prefix = (
        f"{SEGMENT_FAMILY}-{kind}-{os.getpid()}-"
        if kind is not None
        else f"{SEGMENT_FAMILY}-"
    )
    own_marker = f"-{os.getpid()}-"
    return sorted(
        entry
        for entry in os.listdir(shm_dir)
        if entry.startswith(prefix) and (kind is not None or own_marker in entry)
    )
