"""Miniature MapReduce/Spark-like dataflow engine.

SparkER's algorithms are expressed against the RDD contract of Apache Spark:
narrow transformations (``map``, ``flatMap``, ``filter``), shuffle
transformations (``reduceByKey``, ``groupByKey``, ``join``, ``distinct``),
broadcast variables and accumulators.  Since this reproduction must run
offline without a JVM or a cluster, :mod:`repro.engine` implements the same
contract in pure Python:

* :class:`~repro.engine.context.EngineContext` plays the role of
  ``SparkContext`` (``parallelize``, ``broadcast``, ``accumulator``).
* :class:`~repro.engine.rdd.RDD` is a partitioned, lazily evaluated dataset.
* :class:`~repro.engine.scheduler.Scheduler` executes jobs stage by stage,
  recording per-task metrics (records read/written, shuffle volume, elapsed
  time) so that benchmarks can report scalability and skew figures analogous
  to what a Spark UI would show.
* :mod:`repro.engine.executors` decides *where* narrow stages run: serially
  in the driver (default) or on a process pool
  (:class:`~repro.engine.executors.MultiprocessingExecutor`), which ships the
  fused per-partition function chains to workers and merges accumulator /
  metric state back.
* :mod:`repro.engine.shuffle` implements the two-phase shuffle and its
  pluggable :class:`~repro.engine.shuffle.BlockStore` layer: payloads relay
  through the driver (default) or move peer-to-peer via named shared-memory
  segments / spill files, with the driver brokering only block refs.
* :mod:`repro.engine.graphx` provides Pregel-style connected components, the
  GraphX primitive SparkER uses for entity clustering.

The engine preserves the *structure* of the distributed computation (how data
is partitioned, what gets shuffled, what is broadcast); with the
multiprocessing executor the partitioned narrow stages also run genuinely in
parallel across cores.
"""

from repro.engine.context import EngineContext
from repro.engine.rdd import RDD
from repro.engine.broadcast import Broadcast
from repro.engine.accumulators import Accumulator
from repro.engine.executors import (
    Executor,
    MultiprocessingExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.engine.faults import (
    FaultInjected,
    FaultInjector,
    FaultPolicy,
    resolve_fault_injector,
    resolve_fault_policy,
)
from repro.engine.partitioner import HashPartitioner, RangePartitioner
from repro.engine.shuffle import (
    BlockStore,
    DriverBlockStore,
    SharedMemoryBlockStore,
    SpillFileBlockStore,
    resolve_block_store,
)
from repro.engine.metrics import TaskMetrics, StageMetrics, JobMetrics
from repro.engine.graphx import connected_components, pregel_connected_components

__all__ = [
    "EngineContext",
    "RDD",
    "Broadcast",
    "Accumulator",
    "Executor",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "resolve_executor",
    "FaultInjected",
    "FaultInjector",
    "FaultPolicy",
    "resolve_fault_injector",
    "resolve_fault_policy",
    "HashPartitioner",
    "RangePartitioner",
    "BlockStore",
    "DriverBlockStore",
    "SharedMemoryBlockStore",
    "SpillFileBlockStore",
    "resolve_block_store",
    "TaskMetrics",
    "StageMetrics",
    "JobMetrics",
    "connected_components",
    "pregel_connected_components",
]
