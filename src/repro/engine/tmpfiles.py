"""Managed temporary file artifacts: one root directory, one sweep.

Two subsystems create on-disk artifacts with a lifetime tied to a run: the
spill block store (:class:`~repro.engine.shuffle.SpillFileBlockStore` writes
bucket pickle files into a run directory) and the memmap buffer backend of
the CSR index (:meth:`repro.metablocking.index.CSRBlockIndex` backs its
offset/entry vectors with one file-backed buffer).  Both families route
through this module so that

* every artifact lives under **one root** — ``EngineContext(tmp_dir=...)``,
  the ``REPRO_TMPDIR`` environment variable, or the platform default — never
  scattered across whatever tmpdir each call site happened to pick;
* every artifact name carries its **creator pid**
  (``repro-<kind>-<pid>-<seq>``), mirroring the shared-memory segment naming
  of :mod:`repro.engine.sharedmem`, so a single crash sweep
  (:func:`sweep_orphaned_artifacts`) can tell a live owner's file from a
  dead one's and reclaim disk after a crashed run without ever touching an
  artifact that is still in use.

Ownership mirrors the segment registries: paths created here join a
process-local live set and leave it on :func:`discard_artifact`; the sweep
skips the live set, skips any artifact whose creator pid is alive, and
removes the rest (files and directories alike).
"""

from __future__ import annotations

import itertools
import os
import shutil
import tempfile

ENV_VAR = "REPRO_TMPDIR"

_artifact_ids = itertools.count()

# Absolute paths created (and not yet discarded) by this process.  A forked
# worker inherits a copy, which is harmless: the sweep also skips every
# artifact whose creator pid is alive, and workers never sweep their parent.
_live_owned: set[str] = set()


def resolve_tmp_dir(spec: "str | os.PathLike | None" = None) -> str:
    """Resolve the artifact root: explicit spec, ``REPRO_TMPDIR``, default."""
    if spec:
        return os.fspath(spec)
    env = os.environ.get(ENV_VAR, "").strip()
    return env or tempfile.gettempdir()


def _new_artifact_path(kind: str, tmp_dir: "str | os.PathLike | None") -> str:
    if not kind.isalnum():
        raise ValueError(f"artifact kind must be alphanumeric, got {kind!r}")
    root = resolve_tmp_dir(tmp_dir)
    os.makedirs(root, exist_ok=True)
    name = f"repro-{kind}-{os.getpid()}-{next(_artifact_ids)}"
    return os.path.join(root, name)


def make_artifact_path(kind: str, tmp_dir: "str | os.PathLike | None" = None) -> str:
    """Reserve a pid-stamped artifact *file* path (the file is not created).

    The path joins the live-owned set immediately, so a concurrent sweep in
    this process never reclaims it between reservation and first write.
    """
    path = _new_artifact_path(kind, tmp_dir)
    _live_owned.add(path)
    return path


def make_artifact_dir(kind: str, tmp_dir: "str | os.PathLike | None" = None) -> str:
    """Create a pid-stamped artifact *directory* and return its path."""
    path = _new_artifact_path(kind, tmp_dir)
    os.mkdir(path)
    _live_owned.add(path)
    return path


def release_artifact(path: str) -> None:
    """Drop ownership of one artifact *without* removing it.

    For artifacts that graduate into a durable file via ``os.replace`` (the
    WAL's truncate-rewrite): after the rename the reserved path no longer
    exists, but it must leave the live set so shutdown sweeps stay exact.
    """
    _live_owned.discard(path)


def discard_artifact(path: str) -> None:
    """Remove one artifact (file or directory) and drop its ownership.

    Idempotent and silent on a path that is already gone — exactly like the
    segment unlink helpers this mirrors.
    """
    _live_owned.discard(path)
    try:
        if os.path.isdir(path):
            shutil.rmtree(path, ignore_errors=True)
        else:
            os.unlink(path)
    except OSError:
        pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, other user
        return True
    except OSError:  # pragma: no cover - defensive
        return True
    return True


def _artifact_pid(name: str) -> "int | None":
    """Creator pid of a managed artifact name, or ``None`` for foreign names.

    Only names matching ``repro-<kind>-<pid>-<seq>`` exactly are claimed:
    legacy ``tempfile.mkdtemp`` suffixes and other ``repro-*`` files parse as
    non-integer fields and are left alone.
    """
    parts = name.split("-")
    if len(parts) != 4 or parts[0] != "repro" or not parts[1].isalnum():
        return None
    try:
        int(parts[3])
        return int(parts[2])
    except ValueError:
        return None


def sweep_orphaned_artifacts(
    tmp_dir: "str | os.PathLike | None" = None, kind: "str | None" = None
) -> list[str]:
    """Remove managed artifacts whose creator process is gone.

    Scans the resolved root for ``repro-<kind>-<pid>-<seq>`` entries and
    removes those whose pid no longer exists — the crash-recovery companion
    of :func:`repro.engine.sharedmem.sweep_orphaned_segments`, covering the
    on-disk artifact families (spill directories, memmap buffers, WAL
    rewrite temps) in one place.  ``kind`` restricts the sweep to one family
    (the service's startup recovery sweeps only ``waltmp`` under its WAL
    directory).  Returns the removed paths.
    """
    root = resolve_tmp_dir(tmp_dir)
    try:
        entries = os.listdir(root)
    except OSError:
        return []
    marker = None if kind is None else f"repro-{kind}-"
    removed = []
    for entry in entries:
        if marker is not None and not entry.startswith(marker):
            continue
        pid = _artifact_pid(entry)
        if pid is None:
            continue
        path = os.path.join(root, entry)
        if path in _live_owned:
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        discard_artifact(path)
        removed.append(path)
    return removed


def live_artifacts(kind: "str | None" = None) -> list[str]:
    """The artifacts this process currently owns (optionally one kind)."""
    if kind is None:
        return sorted(_live_owned)
    marker = f"repro-{kind}-"
    return sorted(
        path for path in _live_owned if os.path.basename(path).startswith(marker)
    )


def discard_live_artifacts(kind: "str | None" = None) -> list[str]:
    """Remove every artifact this process still owns; return the paths.

    The graceful-shutdown sweep of a long-lived process (the ER service): a
    batch run discards each artifact as its owner closes, but a server that
    is killed mid-request must be able to drop everything it ever created in
    one call.  Restricting to ``kind`` leaves other families untouched.
    """
    paths = live_artifacts(kind)
    for path in paths:
        discard_artifact(path)
    return paths
