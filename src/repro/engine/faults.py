"""Fault-tolerance policy and deterministic fault injection for the engine.

The executor layer decides *where* tasks run; this module decides *what
happens when they fail*.  Two pieces:

* :class:`FaultPolicy` — the recovery contract of a
  :class:`~repro.engine.executors.MultiprocessingExecutor`: how many times a
  task may be attempted, how long one attempt may run before the pool is
  declared hung (``task_timeout``), how long to back off between attempt
  waves (bounded exponential backoff with deterministic jitter derived from
  ``jitter_seed``), and what to do when the attempts are exhausted
  (``on_exhausted="raise"`` surfaces the last error;
  ``"serial-fallback"`` replays the still-failing partitions in the driver).
* :class:`FaultInjector` — a deterministic, test-only chaos harness.  An
  injection spec names exact fault coordinates (stage substring, task index,
  attempt number) and a fault mode: ``crash`` (worker dies via
  ``os._exit``), ``raise`` (task raises :class:`FaultInjected`), ``hang``
  (task sleeps, to exercise the timeout path) or ``disk`` (an
  :class:`OSError`, modelling a failed device — the service layer's WAL
  maps it to read-only degraded mode).  The executor prepends a picklable
  :class:`_FaultProbe` to the shipped chain only for attempt waves with a
  matching clause, so clean attempts run the exact original payload.

The same clause grammar drives the **service fault points**
(:func:`service_fault`, spec from ``REPRO_SERVICE_FAULT``): named code
points in the ER service — ``wal.append``, ``ingest.apply.<collection>``,
``snapshot.save.<collection>``, ``compact.<collection>``, ... — call
``service_fault(point)`` as they execute; a clause's stage substring is
matched against the point name and its attempt number against the
per-point hit counter (the task coordinate is unused).  ``crash`` at a
service point kills the whole process with :data:`CRASH_EXIT_CODE` — the
chaos harness (``scripts/service_chaos.py``) uses this to kill a serving
process mid-ingest / mid-compaction / mid-snapshot deterministically and
assert WAL replay reconstructs the exact pre-crash state.

Retrying is bit-for-bit safe for the same reason serial fallback is: a task
is a pure replay of a pickled function chain over an immutable input
partition, and only the *final successful* outcome of each partition is
merged into driver state (accumulators, broadcast read counts), so a killed
or repeated attempt leaves no trace in the result.

Shared-memory segments and recovery
-----------------------------------
A recovered crash must not leak OS resources, and a sweep must not destroy
state a surviving task still needs.  When the executor tears down a broken
pool it runs :func:`repro.engine.sharedmem.sweep_orphaned_segments` over
every engine-owned ``/dev/shm`` segment (``repro-csr-*`` CSR broadcast
buffers *and* ``repro-shuf-*`` shuffle blocks — the pid embedded in the name
identifies the creating process):

* segments whose creator is **dead** are unlinked — a crashed worker's
  half-published shuffle blocks, a killed driver's stale export;
* segments of **live** processes, the driver's registered own exports, and
  names in the **protected set** are skipped.  The protected set holds
  shuffle blocks published by tasks that already *succeeded*: the executor
  protects them as each task outcome is collected, so a later crash in the
  same wave can rebuild the pool without sweeping blocks a pending reduce
  task still needs, even though their creating worker is gone.  The shuffle
  releases (unprotects + unlinks) every block after its reduce phase.

A failed task *retry* republishes its buckets under fresh segment names
(per-process sequence numbers are never reused); blocks stranded by the
failed attempt are unlinked by the worker's own exception handler when the
worker survives, or by the sweep once it is dead — and the executor sweeps
once more on :meth:`~repro.engine.executors.MultiprocessingExecutor.close`,
when all workers have been reaped.

Configuration: pass a :class:`FaultPolicy` (or its spec string/dict) to
``MultiprocessingExecutor(fault_policy=...)`` /
``EngineContext(fault_policy=...)``, set the ``REPRO_FAULT_POLICY``
environment variable, use the pipeline-spec key ``engine.fault_policy`` or
the CLI flags ``--task-retries`` / ``--task-timeout``.  Spec string:
``"retries=2,timeout=30,backoff=0.5,backoff_max=10,seed=7,on_exhausted=serial-fallback"``.
Injection specs come from ``REPRO_FAULT_INJECT`` or
``MultiprocessingExecutor(fault_injector=...)``; clause grammar:
``mode[~seconds]@stage[:task][#attempt]`` joined by ``;`` — e.g.
``"crash@metablocking.weights:0#1;hang~5@shuffle.reduce:*#*"``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Mapping

from repro.exceptions import EngineError
from repro.utils.hashing import stable_hash

POLICY_ENV_VAR = "REPRO_FAULT_POLICY"
INJECT_ENV_VAR = "REPRO_FAULT_INJECT"
SERVICE_INJECT_ENV_VAR = "REPRO_SERVICE_FAULT"

_ON_EXHAUSTED = ("raise", "serial-fallback")
_MODES = ("crash", "raise", "hang", "disk")
_DEFAULT_HANG_SECONDS = 30.0

# os._exit code used by injected worker crashes; chosen outside the range of
# codes the interpreter itself produces so a crash in CI logs is unambiguous.
CRASH_EXIT_CODE = 70


class FaultInjected(EngineError):
    """Raised by an injected ``raise``-mode fault (test harness only)."""


# --------------------------------------------------------------------- policy
@dataclass(frozen=True)
class FaultPolicy:
    """Recovery contract for tasks shipped to the multiprocessing executor.

    ``max_attempts`` counts pool attempts per task (1 = no retries, the
    default — identical to the historical fail-fast behaviour).
    ``task_timeout`` bounds one attempt's wall-clock; on expiry the pool is
    torn down (hung workers are terminated) and the wave retried.
    ``backoff(n)`` returns the pause before retry wave ``n+1``: exponential
    in the number of failed waves, capped at ``backoff_max`` and scaled by a
    deterministic jitter factor in ``[0.5, 1.0]`` derived from
    ``jitter_seed`` — same seed, same delays, run after run.
    """

    max_attempts: int = 1
    backoff_base: float = 0.1
    backoff_max: float = 5.0
    jitter_seed: int = 0
    task_timeout: float | None = None
    on_exhausted: str = "raise"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise EngineError(
                f"fault policy needs max_attempts >= 1, got {self.max_attempts!r}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise EngineError("fault policy backoff delays must be non-negative")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise EngineError(
                f"fault policy task_timeout must be positive, got {self.task_timeout!r}"
            )
        if self.on_exhausted not in _ON_EXHAUSTED:
            raise EngineError(
                f"fault policy on_exhausted must be one of {_ON_EXHAUSTED}, "
                f"got {self.on_exhausted!r}"
            )

    @property
    def retries(self) -> int:
        """Extra attempts after the first (``max_attempts - 1``)."""
        return self.max_attempts - 1

    def backoff(self, failed_waves: int) -> float:
        """Deterministic delay (seconds) before the next attempt wave."""
        if failed_waves <= 0 or self.backoff_base <= 0:
            return 0.0
        delay = min(self.backoff_max, self.backoff_base * 2 ** (failed_waves - 1))
        fraction = stable_hash((self.jitter_seed, failed_waves)) % 10_000 / 10_000
        return delay * (0.5 + 0.5 * fraction)

    def spec(self) -> str:
        """Round-trippable spec string (inverse of :meth:`parse`)."""
        parts = [f"retries={self.retries}"]
        if self.task_timeout is not None:
            parts.append(f"timeout={self.task_timeout:g}")
        parts.append(f"backoff={self.backoff_base:g}")
        parts.append(f"backoff_max={self.backoff_max:g}")
        if self.jitter_seed:
            parts.append(f"seed={self.jitter_seed}")
        if self.on_exhausted != "raise":
            parts.append(f"on_exhausted={self.on_exhausted}")
        return ",".join(parts)

    @classmethod
    def parse(cls, spec: "str | Mapping[str, Any]") -> "FaultPolicy":
        """Build a policy from a ``key=value`` spec string or a mapping.

        Keys: ``retries`` (extra attempts; ``max_attempts`` is also
        accepted), ``timeout`` (seconds, ``none`` disables), ``backoff``,
        ``backoff_max``, ``seed`` and ``on_exhausted``.
        """
        if isinstance(spec, Mapping):
            items = dict(spec)
        else:
            items = {}
            for clause in spec.split(","):
                clause = clause.strip()
                if not clause:
                    continue
                key, separator, value = clause.partition("=")
                if not separator:
                    raise EngineError(
                        f"fault policy clause {clause!r} is not 'key=value' "
                        f"(in spec {spec!r})"
                    )
                items[key.strip().lower()] = value.strip()
        kwargs: dict[str, Any] = {}
        try:
            for key, value in items.items():
                key = str(key).strip().lower().replace("-", "_")
                if key == "retries":
                    kwargs["max_attempts"] = int(value) + 1
                elif key == "max_attempts":
                    kwargs["max_attempts"] = int(value)
                elif key in ("timeout", "task_timeout"):
                    if value is None or str(value).strip().lower() in ("none", ""):
                        kwargs["task_timeout"] = None
                    else:
                        kwargs["task_timeout"] = float(value)
                elif key in ("backoff", "backoff_base"):
                    kwargs["backoff_base"] = float(value)
                elif key == "backoff_max":
                    kwargs["backoff_max"] = float(value)
                elif key in ("seed", "jitter_seed"):
                    kwargs["jitter_seed"] = int(value)
                elif key == "on_exhausted":
                    kwargs["on_exhausted"] = str(value).strip().lower()
                else:
                    raise EngineError(
                        f"unknown fault policy key {key!r} in spec {spec!r}"
                    )
        except (TypeError, ValueError) as error:
            raise EngineError(
                f"invalid fault policy value in spec {spec!r}: {error}"
            ) from error
        return cls(**kwargs)


def resolve_fault_policy(
    spec: "FaultPolicy | str | Mapping[str, Any] | None" = None,
) -> FaultPolicy:
    """Turn a fault-policy spec into a :class:`FaultPolicy`.

    ``None`` consults the ``REPRO_FAULT_POLICY`` environment variable and
    defaults to the no-retry policy (identical to historical behaviour).
    """
    if spec is None:
        spec = os.environ.get(POLICY_ENV_VAR, "").strip() or None
        if spec is None:
            return FaultPolicy()
    if isinstance(spec, FaultPolicy):
        return spec
    if isinstance(spec, (str, Mapping)):
        return FaultPolicy.parse(spec)
    raise EngineError(
        f"fault policy must be a FaultPolicy, spec string or mapping, got {spec!r}"
    )


# ------------------------------------------------------------------- injector
@dataclass(frozen=True)
class FaultClause:
    """One injection coordinate: fire ``mode`` at (stage, task, attempt).

    ``stage`` is substring-matched against the executed stage's name;
    ``task`` / ``attempt`` of ``None`` mean "every task" / "every attempt"
    (the ``*`` wildcard in the spec grammar).
    """

    mode: str
    stage: str
    task: int | None = 0
    attempt: int | None = 1
    seconds: float = _DEFAULT_HANG_SECONDS

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise EngineError(
                f"fault mode must be one of {_MODES}, got {self.mode!r}"
            )
        if not self.stage:
            raise EngineError("fault clause needs a stage substring after '@'")
        if self.seconds < 0:
            raise EngineError("fault hang duration must be non-negative")

    def matches(self, stage_name: str, attempt: int) -> bool:
        if self.stage not in stage_name:
            return False
        return self.attempt is None or self.attempt == attempt


class FaultInjector:
    """Deterministic fault injection at (stage, task, attempt) coordinates.

    Built from clauses (see :class:`FaultClause`) or parsed from a spec
    string: clauses joined by ``;``, each
    ``mode[~seconds]@stage[:task][#attempt]`` with ``*`` wildcards for task
    and attempt.  The same spec always fires the same faults in the same
    places — chaos tests replay exactly.
    """

    def __init__(self, clauses: "tuple[FaultClause, ...] | list[FaultClause]") -> None:
        self.clauses = tuple(clauses)
        if not self.clauses:
            raise EngineError("fault injector needs at least one clause")

    def plan(self, stage_name: str, attempt: int) -> "tuple[FaultClause, ...]":
        """Clauses that fire in stage ``stage_name`` during attempt ``attempt``."""
        return tuple(
            clause for clause in self.clauses if clause.matches(stage_name, attempt)
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultInjector":
        clauses = []
        for raw in spec.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            clauses.append(_parse_clause(raw, spec))
        if not clauses:
            raise EngineError(f"fault injection spec {spec!r} has no clauses")
        return cls(clauses)

    def __repr__(self) -> str:
        return f"FaultInjector(clauses={self.clauses!r})"


def _parse_clause(raw: str, spec: str) -> FaultClause:
    head, separator, location = raw.partition("@")
    if not separator:
        raise EngineError(
            f"fault clause {raw!r} has no '@stage' part (in spec {spec!r})"
        )
    mode, _, seconds_text = head.strip().partition("~")
    mode = mode.strip().lower()
    seconds = _DEFAULT_HANG_SECONDS
    if seconds_text.strip():
        try:
            seconds = float(seconds_text)
        except ValueError as error:
            raise EngineError(
                f"invalid duration in fault clause {raw!r} (in spec {spec!r})"
            ) from error
    attempt: int | None = 1
    if "#" in location:
        location, _, attempt_text = location.rpartition("#")
        attempt = _parse_coordinate(attempt_text, "attempt", raw, spec, minimum=1)
    task: int | None = 0
    if ":" in location:
        location, _, task_text = location.rpartition(":")
        task = _parse_coordinate(task_text, "task", raw, spec, minimum=0)
    return FaultClause(
        mode=mode, stage=location.strip(), task=task, attempt=attempt, seconds=seconds
    )


def _parse_coordinate(
    text: str, what: str, raw: str, spec: str, *, minimum: int
) -> int | None:
    text = text.strip()
    if text == "*":
        return None
    try:
        value = int(text)
    except ValueError as error:
        raise EngineError(
            f"invalid {what} {text!r} in fault clause {raw!r} (in spec {spec!r})"
        ) from error
    if value < minimum:
        raise EngineError(
            f"{what} must be >= {minimum} in fault clause {raw!r} (in spec {spec!r})"
        )
    return value


def resolve_fault_injector(
    spec: "FaultInjector | str | None" = None,
) -> FaultInjector | None:
    """Turn an injection spec into a :class:`FaultInjector` (or ``None``).

    ``None`` consults ``REPRO_FAULT_INJECT``; an empty/unset variable means
    no injection — the production default.
    """
    if spec is None:
        spec = os.environ.get(INJECT_ENV_VAR, "").strip() or None
        if spec is None:
            return None
    if isinstance(spec, FaultInjector):
        return spec
    if isinstance(spec, str):
        return FaultInjector.parse(spec)
    raise EngineError(
        f"fault injector must be a FaultInjector or a spec string, got {spec!r}"
    )


class _FaultProbe:
    """Picklable chain prefix that fires matched faults inside a worker task.

    The executor prepends one probe to the shipped chain for an attempt wave
    with matching clauses; at call time the probe checks its task coordinate
    and either crashes the worker, raises :class:`FaultInjected` or sleeps —
    then passes the rows through unchanged, so a non-matching task in the
    same wave computes the exact same result as an unprobed run.
    """

    __slots__ = ("clauses", "stage", "attempt")

    def __init__(
        self, clauses: "tuple[FaultClause, ...]", stage: str, attempt: int
    ) -> None:
        self.clauses = clauses
        self.stage = stage
        self.attempt = attempt

    def __call__(self, index: int, rows: Any) -> Any:
        for clause in self.clauses:
            if clause.task is not None and clause.task != index:
                continue
            if clause.mode == "crash":
                os._exit(CRASH_EXIT_CODE)
            if clause.mode == "raise":
                raise FaultInjected(
                    f"injected fault: stage {self.stage!r} task {index} "
                    f"attempt {self.attempt}"
                )
            if clause.mode == "disk":
                raise OSError(
                    f"injected disk fault: stage {self.stage!r} task {index} "
                    f"attempt {self.attempt}"
                )
            time.sleep(clause.seconds)
        return rows

    def __repr__(self) -> str:
        return (
            f"_FaultProbe(stage={self.stage!r}, attempt={self.attempt}, "
            f"clauses={self.clauses!r})"
        )


# ------------------------------------------------------- service fault points
class ServicePointInjector:
    """Fire injected faults at named service code points, hit-counted.

    Reuses the :class:`FaultClause` grammar: the clause's stage substring is
    matched against the point name and its attempt number against this
    injector's per-point hit counter (first call to a point is hit 1); the
    task coordinate is ignored.  Same spec, same hits, same faults — service
    chaos runs replay exactly like engine ones.
    """

    def __init__(self, injector: FaultInjector) -> None:
        self.injector = injector
        self._hits: dict[str, int] = {}

    def fire(self, point: str) -> None:
        hit = self._hits.get(point, 0) + 1
        self._hits[point] = hit
        for clause in self.injector.clauses:
            if not clause.matches(point, hit):
                continue
            if clause.mode == "crash":
                os._exit(CRASH_EXIT_CODE)
            if clause.mode == "raise":
                raise FaultInjected(f"injected fault at {point!r} hit {hit}")
            if clause.mode == "disk":
                raise OSError(f"injected disk fault at {point!r} hit {hit}")
            time.sleep(clause.seconds)


_SERVICE_UNSET = object()
_service_injector: "ServicePointInjector | None | object" = _SERVICE_UNSET


def service_fault(point: str) -> None:
    """Fire injected service-layer faults at ``point``.

    A no-op unless ``REPRO_SERVICE_FAULT`` holds an injection spec — the
    production fast path is one cached ``is None`` check.  The spec is read
    once per process; tests switching specs call :func:`reset_service_faults`.
    """
    global _service_injector
    if _service_injector is _SERVICE_UNSET:
        spec = os.environ.get(SERVICE_INJECT_ENV_VAR, "").strip() or None
        _service_injector = (
            ServicePointInjector(FaultInjector.parse(spec)) if spec else None
        )
    if _service_injector is not None:
        _service_injector.fire(point)


def reset_service_faults() -> None:
    """Drop the cached service injector (re-reads the env on next fire)."""
    global _service_injector
    _service_injector = _SERVICE_UNSET
