"""Pluggable stage executors: where the engine's stages actually run.

The scheduler records *what* ran; an :class:`Executor` decides *where*.  Two
implementations exist:

* :class:`SerialExecutor` — runs every partition in the driver process, in
  partition order.  This is the historical behaviour and the default.
* :class:`MultiprocessingExecutor` — ships each partition of a stage to a
  :class:`concurrent.futures.ProcessPoolExecutor` worker, turning the
  engine's recorded task parallelism into real multi-core wall-clock
  parallelism.

Every physical stage routes through :meth:`Executor.run_stage`: fused narrow
chains (see :class:`~repro.engine.rdd.MappedPartitionsRDD`) *and* the two
phases of a shuffle — the map-side bucket/combine tasks and the reduce-side
merge tasks of :func:`repro.engine.shuffle.execute_shuffle`.

A stage is shippable when its per-partition function chain pickles:
the chain is serialised **once per stage** in the driver (so an unpicklable
closure fails fast with a clear :class:`~repro.exceptions.EngineError`
instead of hanging a worker), and each worker task replays it over its own
partition.  :class:`~repro.engine.broadcast.Broadcast` values travel inside
the chain through a registry-backed ``__reduce__`` — one live copy per worker
process — and :class:`~repro.engine.accumulators.Accumulator` updates are
captured task-side and replayed on the driver objects in partition order, so
the merged driver state is identical to a serial run (same float accumulation
order, same counts).

Executor selection: pass an :class:`Executor` instance or a spec string to
``EngineContext(executor=...)``, or set the ``REPRO_ENGINE_EXECUTOR``
environment variable.  Spec strings: ``"serial"``, ``"process"``,
``"process:4"`` (4 workers).

Fault tolerance: the multiprocessing executor owns a
:class:`~repro.engine.faults.FaultPolicy` that governs an *attempt loop*
around each shipped stage — a crashed worker (``BrokenProcessPool``), a hung
task (per-task timeout) or a task exception fails only that attempt wave;
the pool is torn down and rebuilt, orphaned ``/dev/shm`` segments are swept,
and only the still-failing partitions are re-run after a deterministic
backoff.  Retrying is bit-for-bit safe because a task is a pure replay of
the pickled chain over an immutable partition and only final successful
outcomes are merged into driver state.  When the policy is exhausted the
stage either raises or replays the failing partitions in the driver
(``on_exhausted="serial-fallback"``), re-running the *pickled* chain under
task-side accumulator capture so the partition-order replay — and therefore
every float accumulation — stays identical to a clean run.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
import time
from collections.abc import Callable, Iterable, Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

import itertools

from repro.engine import accumulators as _accumulators
from repro.engine import broadcast as _broadcast
from repro.engine import sharedmem as _sharedmem
from repro.engine import tmpfiles as _tmpfiles
from repro.engine.faults import (
    FaultInjector,
    FaultPolicy,
    _FaultProbe,
    resolve_fault_injector,
    resolve_fault_policy,
)
from repro.exceptions import EngineError

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platform
    _resource = None  # type: ignore[assignment]

ENV_VAR = "REPRO_ENGINE_EXECUTOR"


def _max_rss_bytes() -> int:
    """Peak resident set size of *this* process, in bytes (0 when unknown).

    ``ru_maxrss`` is a process-lifetime high-water mark: kilobytes on Linux,
    bytes on macOS.
    """
    if _resource is None:  # pragma: no cover - non-POSIX platform
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024

StageFunc = Callable[[int, Iterator[Any]], Iterable[Any]]

# Every shipped stage gets a token; all its tasks share one payload, so each
# worker deserialises the chain (and any broadcast riding in it) once per
# stage instead of once per task.
_stage_tokens = itertools.count()

# Worker-side single-slot chain cache.  Stages execute one after another, so
# keeping only the latest chain both maximises hits and avoids pinning the
# broadcasts of finished stages in worker memory.
_cached_token: int | None = None
_cached_funcs: tuple[StageFunc, ...] = ()


def _load_chain(payload: bytes, token: int) -> tuple[StageFunc, ...]:
    global _cached_token, _cached_funcs
    if _cached_token != token:
        _cached_funcs = pickle.loads(payload)
        _cached_token = token
    return _cached_funcs


@dataclass
class TaskOutcome:
    """What one task (one partition of one stage) produced.

    Besides the materialised partition this carries everything the driver
    must merge back: the task's wall-clock, which worker ran it, the
    accumulator updates it recorded (replayed driver-side in partition
    order) and how often it read each broadcast variable.  ``attempts`` and
    ``failures`` record the fault-tolerance history of the partition:
    ``attempts`` counts execution attempts including the final successful
    one, ``failures`` the failed attempts before it (0 on a clean run).
    ``published_segments`` names the shared-memory shuffle blocks the task
    published (see :mod:`repro.engine.shuffle`); the driver protects them
    from the orphan sweep the moment the outcome is collected, so a pool
    rebuild never unlinks a block a pending reduce task still needs.
    ``max_rss_bytes`` is the executing process's peak resident set size
    (the ``getrusage`` high-water mark) sampled as the task finished — the
    per-task memory signal the scale bench guard reads.
    """

    partition: list[Any]
    elapsed_seconds: float = 0.0
    worker: str = "driver"
    accumulator_updates: dict[int, list[Any]] = field(default_factory=dict)
    broadcast_reads: dict[int, int] = field(default_factory=dict)
    attempts: int = 1
    failures: int = 0
    published_segments: list[str] = field(default_factory=list)
    max_rss_bytes: int = 0


@dataclass
class StageResult:
    """All task outcomes of one executed stage, in partition order."""

    executor: str
    tasks: list[TaskOutcome]

    @property
    def partitions(self) -> list[list[Any]]:
        return [task.partition for task in self.tasks]


class Executor:
    """Runs the fused function chain of a narrow stage over its partitions."""

    name = "executor"

    def run_stage(
        self,
        funcs: Sequence[StageFunc],
        source_partitions: Sequence[Sequence[Any]],
        name: str = "stage",
    ) -> StageResult:
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (worker pools); idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """Run every task in the driver process, in partition order."""

    name = "serial"

    def run_stage(
        self,
        funcs: Sequence[StageFunc],
        source_partitions: Sequence[Sequence[Any]],
        name: str = "stage",
    ) -> StageResult:
        tasks = []
        for index, partition in enumerate(source_partitions):
            start = time.perf_counter()
            rows: Iterable[Any] = iter(partition)
            for func in funcs:
                rows = func(index, rows)
            data = list(rows)
            tasks.append(
                TaskOutcome(
                    data,
                    time.perf_counter() - start,
                    max_rss_bytes=_max_rss_bytes(),
                )
            )
        return StageResult(self.name, tasks)


def _run_remote_task(
    payload: bytes, token: int, index: int, partition: list[Any]
) -> TaskOutcome:
    """Worker-side task body: replay the pickled chain over one partition.

    Accumulator updates and broadcast reads are captured per task (the worker
    process is long-lived and serves many tasks) and returned for the driver
    to merge.
    """
    start = time.perf_counter()
    funcs = _load_chain(payload, token)
    baseline = _broadcast.snapshot_access_counts()
    _accumulators.begin_task_capture()
    _sharedmem.begin_publish_capture()
    try:
        rows: Iterable[Any] = iter(partition)
        for func in funcs:
            rows = func(index, rows)
        data = list(rows)
    except BaseException:
        # The task failed after possibly publishing shuffle blocks; nothing
        # will ever consume them (a retry republishes fresh names), so
        # unlink them here while this worker still owns them.
        for name in _sharedmem.end_publish_capture():
            _sharedmem.unlink_segment(name)
        raise
    finally:
        updates = _accumulators.end_task_capture()
    published = _sharedmem.end_publish_capture()
    reads = _broadcast.access_count_delta(baseline)
    return TaskOutcome(
        data,
        time.perf_counter() - start,
        f"pid-{os.getpid()}",
        updates,
        reads,
        published_segments=published,
        max_rss_bytes=_max_rss_bytes(),
    )


def _run_driver_task(payload: bytes, index: int, partition: list[Any]) -> TaskOutcome:
    """Driver-side per-partition serial fallback of the fault-tolerant loop.

    Replays the *pickled* chain: accumulators rebuild (via their
    ``__reduce__``) as capturing task-side replicas, so the recorded updates
    are merged by the caller in partition order together with the pool
    outcomes — preserving the exact accumulation order of a clean run.
    Broadcasts resolve through the registry back to the driver originals,
    whose access counts increment directly (hence no reads are reported).
    """
    start = time.perf_counter()
    funcs = pickle.loads(payload)
    _accumulators.begin_task_capture()
    try:
        rows: Iterable[Any] = iter(partition)
        for func in funcs:
            rows = func(index, rows)
        data = list(rows)
    finally:
        updates = _accumulators.end_task_capture()
    return TaskOutcome(
        data,
        time.perf_counter() - start,
        "driver",
        updates,
        {},
        max_rss_bytes=_max_rss_bytes(),
    )


def _sweep_shared_segments() -> None:
    """Best-effort sweep of orphaned shared-memory segments after a crash.

    Covers every ``repro-*`` segment family — broadcast CSR buffers and
    shuffle blocks alike — while honouring the driver's protected set of
    in-flight shuffle blocks (see :mod:`repro.engine.sharedmem`).  The
    on-disk artifact families (spill directories, memmap index buffers)
    are swept in the same breath via :mod:`repro.engine.tmpfiles`.  Any
    failure is swallowed: leaked segments are a resource concern, never a
    correctness one.
    """
    try:
        _sharedmem.sweep_orphaned_segments()
    except Exception:  # pragma: no cover - defensive
        pass
    try:
        _tmpfiles.sweep_orphaned_artifacts()
    except Exception:  # pragma: no cover - defensive
        pass


def _release_published(outcomes: Iterable["TaskOutcome | None"]) -> None:
    """Unlink the shuffle blocks of already-collected outcomes on abort.

    When a stage raises after some tasks succeeded, their published (and by
    then protected) segments would otherwise outlive the failed shuffle —
    the driver-side release in ``execute_shuffle`` never sees the refs.
    """
    for outcome in outcomes:
        if outcome is None:
            continue
        for name in outcome.published_segments:
            _sharedmem.unlink_segment(name)


class MultiprocessingExecutor(Executor):
    """Run each task of a stage in a process pool (real multi-core execution).

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.
    on_unpicklable:
        What to do when a stage's function chain does not pickle (user code
        captured an unpicklable closure): ``"fallback"`` (default) runs that
        stage serially in the driver and labels it
        ``process[...]→serial-fallback`` in the stage metrics; ``"raise"``
        raises :class:`~repro.exceptions.EngineError` immediately.
    fault_policy:
        Recovery contract for shipped tasks — a
        :class:`~repro.engine.faults.FaultPolicy`, a spec string/dict, or
        ``None`` to consult ``REPRO_FAULT_POLICY`` (default: no retries,
        identical to the historical fail-fast behaviour).
    fault_injector:
        Deterministic test-only chaos harness — a
        :class:`~repro.engine.faults.FaultInjector`, a spec string, or
        ``None`` to consult ``REPRO_FAULT_INJECT`` (default: no injection).

    The pool is created lazily on the first shipped stage (with the ``fork``
    start method where available, so already-registered broadcasts are
    inherited copy-on-write) and must be released with :meth:`close` — or use
    the executor / its :class:`~repro.engine.context.EngineContext` as a
    context manager.  A pool broken by a worker crash or a hung task is torn
    down and lazily rebuilt by the fault-tolerant attempt loop of
    :meth:`run_stage`; rebuilt pools re-fork from the driver, so broadcast
    registry state is inherited exactly as on first creation.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        on_unpicklable: str = "fallback",
        fault_policy: "FaultPolicy | str | dict | None" = None,
        fault_injector: "FaultInjector | str | None" = None,
    ) -> None:
        if on_unpicklable not in ("fallback", "raise"):
            raise EngineError(
                f"on_unpicklable must be 'fallback' or 'raise', got {on_unpicklable!r}"
            )
        if max_workers is not None and max_workers <= 0:
            raise EngineError("max_workers must be positive")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.on_unpicklable = on_unpicklable
        self.fault_policy = resolve_fault_policy(fault_policy)
        self.fault_injector = resolve_fault_injector(fault_injector)
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False

    @property
    def label(self) -> str:
        return f"{self.name}[{self.max_workers}]"

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Prefer cheap copy-on-write workers, but only on Linux: macOS
            # offers "fork" too yet forking after system frameworks have been
            # touched can deadlock (why CPython made "spawn" the macOS
            # default).  Everything shipped to workers is spawn-safe anyway —
            # broadcasts ride in the chain payload — so other platforms just
            # use their default start method.
            mp_context = (
                multiprocessing.get_context("fork")
                if sys.platform == "linux"
                and "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=mp_context
            )
        return self._pool

    def run_stage(
        self,
        funcs: Sequence[StageFunc],
        source_partitions: Sequence[Sequence[Any]],
        name: str = "stage",
    ) -> StageResult:
        if self._closed:
            # A silent restart here would fork a fresh pool that nothing owns
            # or shuts down; surface the lifecycle bug instead.
            raise EngineError(
                "MultiprocessingExecutor was closed; create a new executor "
                "(or a new EngineContext) to run further stages"
            )
        try:
            payload = pickle.dumps(tuple(funcs), protocol=pickle.HIGHEST_PROTOCOL)
        except ValueError:
            # Not an unpicklable closure: e.g. a destroyed Broadcast refusing
            # to ship.  That is a lifecycle bug — surface it untranslated
            # rather than misdiagnosing it or silently downgrading to serial.
            raise
        except Exception as error:
            if self.on_unpicklable == "raise":
                raise EngineError(
                    f"stage function chain is not picklable and cannot be shipped "
                    f"to worker processes: {error!r}. Move closures to module-level "
                    f"callables with bound arguments, or run this stage with the "
                    f"serial executor."
                ) from error
            serial = SerialExecutor().run_stage(funcs, source_partitions)
            return StageResult(f"{self.label}→serial-fallback", serial.tasks)
        token = next(_stage_tokens)
        policy = self.fault_policy
        num_tasks = len(source_partitions)
        outcomes: list[TaskOutcome | None] = [None] * num_tasks
        failure_counts = [0] * num_tasks
        pending = list(range(num_tasks))
        last_error: BaseException | None = None
        attempt = 0
        while pending and attempt < policy.max_attempts:
            attempt += 1
            final_attempt = attempt >= policy.max_attempts
            if attempt > 1:
                delay = policy.backoff(attempt - 1)
                if delay > 0:
                    time.sleep(delay)
            # Fault injection (tests only): attempt waves with a matching
            # clause ship a probe-prefixed copy of the chain under a fresh
            # token; clean waves reuse the original payload unchanged.
            attempt_payload, attempt_token = payload, token
            if self.fault_injector is not None:
                clauses = self.fault_injector.plan(name, attempt)
                if clauses:
                    probe = _FaultProbe(clauses, name, attempt)
                    attempt_payload = pickle.dumps(
                        (probe, *tuple(funcs)), protocol=pickle.HIGHEST_PROTOCOL
                    )
                    attempt_token = next(_stage_tokens)
            wave: list[tuple[int, Any]] = []
            pool_broken = False
            try:
                pool = self._ensure_pool()
                for index in pending:
                    wave.append(
                        (
                            index,
                            pool.submit(
                                _run_remote_task,
                                attempt_payload,
                                attempt_token,
                                index,
                                list(source_partitions[index]),
                            ),
                        )
                    )
            except (BrokenProcessPool, RuntimeError) as error:
                last_error = error
                pool_broken = True
            # Collect in submission order: partition order is what keeps the
            # driver-side merge (dict insertion, accumulator replay)
            # identical to a serial run.  Every submitted future of the wave
            # is consumed (or the pool torn down), so a failure never leaves
            # orphaned tasks running behind the driver's back.
            still_pending: list[int] = []
            for index, future in wave:
                try:
                    outcome = future.result(timeout=policy.task_timeout)
                except FutureTimeoutError as error:
                    last_error = error
                    failure_counts[index] += 1
                    still_pending.append(index)
                    if not pool_broken:
                        # Hung workers cannot be cancelled; kill them so the
                        # remaining futures of this wave fail fast instead of
                        # each waiting out the full timeout.
                        pool_broken = True
                        self._terminate_workers()
                except BrokenProcessPool as error:
                    last_error = error
                    failure_counts[index] += 1
                    still_pending.append(index)
                    pool_broken = True
                except Exception as error:
                    # The task itself raised (user code or injected fault).
                    last_error = error
                    failure_counts[index] += 1
                    if final_attempt and policy.on_exhausted == "raise":
                        # Unrecoverable: cancel the outstanding futures of
                        # this wave, unlink the shuffle blocks of the tasks
                        # that did succeed (nothing will consume them) and
                        # surface the original exception.
                        self._discard_pool()
                        _release_published(outcomes)
                        raise
                    still_pending.append(index)
                else:
                    # Shield this task's shuffle blocks from the orphan
                    # sweep *before* any pool teardown: the publishing
                    # worker may crash later in the wave, but these blocks
                    # are already owed to a pending reduce task.
                    _sharedmem.protect_segments(outcome.published_segments)
                    outcome.attempts = attempt
                    outcome.failures = failure_counts[index]
                    outcomes[index] = outcome
            submitted = {index for index, _ in wave}
            for index in pending:
                if index not in submitted:
                    failure_counts[index] += 1
                    still_pending.append(index)
            if pool_broken:
                self._discard_pool()
            pending = sorted(set(still_pending))
        label = self.label
        if pending:
            if policy.on_exhausted != "serial-fallback":
                _release_published(outcomes)
                raise EngineError(
                    f"stage {name!r}: {len(pending)} task(s) still failing "
                    f"after {policy.max_attempts} attempt(s); last error: "
                    f"{last_error!r}"
                ) from last_error
            # Exhausted: replay the failing partitions in the driver.  The
            # *pickled* chain is replayed (not the original funcs), so
            # accumulators rebuild as capturing task-side replicas and the
            # updates are merged in partition order with the pool outcomes —
            # the same replay order as a clean run.
            for index in pending:
                outcome = _run_driver_task(
                    payload, index, list(source_partitions[index])
                )
                outcome.attempts = failure_counts[index] + 1
                outcome.failures = failure_counts[index]
                outcomes[index] = outcome
            label = f"{self.label}→serial-fallback"
        tasks = [outcome for outcome in outcomes if outcome is not None]
        if len(tasks) != num_tasks:  # pragma: no cover - defensive
            _release_published(outcomes)
            raise EngineError(f"stage {name!r} lost task outcomes during recovery")
        return StageResult(label, tasks)

    def _terminate_workers(self) -> None:
        """Forcibly kill the pool's worker processes (hung-task recovery)."""
        pool = self._pool
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            if process.is_alive():
                process.terminate()

    def _discard_pool(self) -> None:
        """Tear down the pool without waiting; a later wave rebuilds lazily.

        ``cancel_futures=True`` drops any still-queued tasks so a failed
        stage does not leak work, and the shared-memory sweep releases
        ``/dev/shm`` segments orphaned by crashed workers.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        _sweep_shared_segments()

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            # With the workers now reaped, catch any segment a retried or
            # crashed task stranded mid-publish (pid-alive checks during the
            # run skip segments of live-but-idle workers).
            _sweep_shared_segments()

    def __repr__(self) -> str:
        return (
            f"MultiprocessingExecutor(max_workers={self.max_workers}, "
            f"on_unpicklable={self.on_unpicklable!r}, "
            f"fault_policy={self.fault_policy.spec()!r})"
        )


def resolve_executor(
    spec: "Executor | str | None" = None,
    *,
    fault_policy: "FaultPolicy | str | dict | None" = None,
    fault_injector: "FaultInjector | str | None" = None,
) -> Executor:
    """Turn an executor spec into an :class:`Executor` instance.

    ``None`` consults the ``REPRO_ENGINE_EXECUTOR`` environment variable and
    defaults to the serial executor.  Strings: ``"serial"``; ``"process"`` /
    ``"multiprocessing"``, optionally with a worker count (``"process:4"``).

    ``fault_policy`` / ``fault_injector`` configure the multiprocessing
    executor built from a spec string (serial execution has no pool to
    recover, so they are ignored for ``"serial"``); combining them with an
    already-built :class:`Executor` instance is an error — configure the
    instance itself.
    """
    if spec is None:
        spec = os.environ.get(ENV_VAR, "").strip() or "serial"
    if isinstance(spec, Executor):
        if fault_policy is not None or fault_injector is not None:
            raise EngineError(
                "cannot combine an Executor instance with fault_policy/"
                "fault_injector; pass them to the executor's constructor"
            )
        return spec
    if not isinstance(spec, str):
        raise EngineError(f"executor spec must be an Executor or a string, got {spec!r}")
    name, _, argument = spec.partition(":")
    name = name.strip().lower()
    if name in ("serial", "sync", "driver"):
        if argument.strip():
            raise EngineError(
                f"the serial executor takes no worker count (got {spec!r}); "
                f"use 'process:<N>' for a worker pool"
            )
        return SerialExecutor()
    if name in ("process", "processes", "multiprocessing", "mp"):
        workers: int | None = None
        if argument.strip():
            try:
                workers = int(argument)
            except ValueError as error:
                raise EngineError(
                    f"invalid worker count in executor spec {spec!r}"
                ) from error
        return MultiprocessingExecutor(
            max_workers=workers,
            fault_policy=fault_policy,
            fault_injector=fault_injector,
        )
    raise EngineError(
        f"unknown executor {spec!r}; expected 'serial', 'process' or 'process:<N>'"
    )
