"""The engine context — the ``SparkContext`` of the mini engine.

Create one :class:`EngineContext` per pipeline run.  It owns the executor
(where narrow stages run), the scheduler (metrics), broadcast variables and
accumulators, and is the factory for RDDs.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any, Callable, TypeVar

from repro.engine.accumulators import Accumulator, new_accumulator
from repro.engine.broadcast import Broadcast, new_broadcast
from repro.engine.executors import Executor, StageResult, resolve_executor
from repro.engine.rdd import RDD, ParallelCollectionRDD
from repro.engine.scheduler import Scheduler
from repro.engine.shuffle import BlockStore, resolve_block_store
from repro.exceptions import EngineError

T = TypeVar("T")


class EngineContext:
    """Entry point of the mini dataflow engine.

    Parameters
    ----------
    default_parallelism:
        Number of partitions used by ``parallelize`` when not overridden and
        the default for shuffle outputs.
    app_name:
        Label used in logs and metric reports.
    executor:
        Where narrow stages run: an :class:`~repro.engine.executors.Executor`
        instance, a spec string (``"serial"``, ``"process"``, ``"process:4"``)
        or ``None`` to consult the ``REPRO_ENGINE_EXECUTOR`` environment
        variable (default: serial).  A context created from a spec string
        owns its executor and closes it in :meth:`stop`; a caller-supplied
        instance is shared and left open.
    fault_policy:
        Task recovery contract for the multiprocessing executor (a
        :class:`~repro.engine.faults.FaultPolicy`, spec string or dict;
        ``None`` consults ``REPRO_FAULT_POLICY``).  Only meaningful when the
        executor is built from a spec string here — pass the policy to the
        executor's constructor when supplying an instance.
    fault_injector:
        Deterministic test-only fault injection (spec string or
        :class:`~repro.engine.faults.FaultInjector`; ``None`` consults
        ``REPRO_FAULT_INJECT``).
    block_store:
        How shuffle block payloads travel from map to reduce tasks: a
        :class:`~repro.engine.shuffle.BlockStore` instance, a spec string
        (``"driver"``, ``"shared-memory"``, ``"spill"``) or ``None`` to
        consult the ``REPRO_BLOCK_STORE`` environment variable (default:
        driver relay).  Like the executor, a store built from a spec string
        is owned by the context and closed in :meth:`stop`; a
        caller-supplied instance is shared and left open.
    tmp_dir:
        Root directory for every on-disk run artifact this context creates —
        spill block directories and memmap index buffers alike (``None``
        consults ``REPRO_TMPDIR`` then the platform default; see
        :mod:`repro.engine.tmpfiles`).
    """

    def __init__(
        self,
        default_parallelism: int = 4,
        app_name: str = "sparker",
        executor: "Executor | str | None" = None,
        fault_policy: Any = None,
        fault_injector: Any = None,
        block_store: "BlockStore | str | None" = None,
        tmp_dir: "str | None" = None,
    ) -> None:
        if default_parallelism <= 0:
            raise EngineError("default_parallelism must be positive")
        self.default_parallelism = default_parallelism
        self.app_name = app_name
        self.tmp_dir = tmp_dir
        self.scheduler = Scheduler()
        self._owns_executor = not isinstance(executor, Executor)
        self.executor = resolve_executor(
            executor, fault_policy=fault_policy, fault_injector=fault_injector
        )
        self._owns_block_store = not isinstance(block_store, BlockStore)
        self.block_store = resolve_block_store(block_store, tmp_dir=tmp_dir)
        self._broadcasts: dict[int, Broadcast[Any]] = {}
        self._accumulators: dict[int, Accumulator[Any]] = {}

    # ------------------------------------------------------------------ RDDs
    def parallelize(self, data: Sequence[Any], num_partitions: int | None = None) -> RDD:
        """Create an RDD from a Python sequence."""
        partitions = num_partitions or self.default_parallelism
        if partitions <= 0:
            raise EngineError("num_partitions must be positive")
        return ParallelCollectionRDD(self, data, partitions)

    def emptyRDD(self) -> RDD:
        """Create an RDD with no elements (single empty partition)."""
        return ParallelCollectionRDD(self, [], 1)

    def range(self, start: int, end: int | None = None, num_partitions: int | None = None) -> RDD:
        """Create an RDD of consecutive integers, like ``sc.range``."""
        if end is None:
            start, end = 0, start
        return self.parallelize(list(range(start, end)), num_partitions)

    # ----------------------------------------------------------- shared state
    def broadcast(self, value: T) -> Broadcast[T]:
        """Create a broadcast variable holding ``value``."""
        broadcast = new_broadcast(value)
        self._broadcasts[broadcast.id] = broadcast
        return broadcast

    def accumulator(
        self, initial: T, combine: Callable[[T, T], T] | None = None
    ) -> Accumulator[T]:
        """Create an accumulator starting at ``initial``."""
        accumulator = new_accumulator(initial, combine)
        self._accumulators[accumulator.id] = accumulator
        return accumulator

    def merge_stage_result(self, result: StageResult) -> None:
        """Fold worker-side task state back into the driver objects.

        Accumulator updates are replayed in partition order — the same order
        a serial run applies them — and broadcast read counts are added to
        the driver-side ``access_count``.
        """
        for task in result.tasks:
            for accumulator_id, updates in task.accumulator_updates.items():
                accumulator = self._accumulators.get(accumulator_id)
                if accumulator is not None:
                    for update in updates:
                        accumulator.add(update)
            for broadcast_id, reads in task.broadcast_reads.items():
                broadcast = self._broadcasts.get(broadcast_id)
                if broadcast is not None:
                    broadcast.access_count += reads

    # ---------------------------------------------------------------- metrics
    def metrics_summary(self) -> dict[str, Any]:
        """Return a summary of everything executed on this context so far."""
        return {
            "app_name": self.app_name,
            "default_parallelism": self.default_parallelism,
            "executor": self.executor.name,
            "block_store": self.block_store.name,
            "jobs": len(self.scheduler.jobs),
            "stages": len(self.scheduler.stages),
            "tasks": self.scheduler.total_tasks,
            "task_attempts": self.scheduler.total_task_attempts,
            "task_failures": self.scheduler.total_task_failures,
            "tasks_recovered": self.scheduler.total_recovered,
            "shuffle_records": self.scheduler.total_shuffle_records,
            "shuffle_bytes": self.scheduler.total_shuffle_bytes,
            "shuffle_relay_bytes": self.scheduler.total_shuffle_relay_bytes,
            "shuffle_peer_bytes": self.scheduler.total_shuffle_peer_bytes,
            "max_rss_bytes": self.scheduler.max_rss_bytes,
            "broadcasts": len(self._broadcasts),
            "accumulators": len(self._accumulators),
        }

    def reset_metrics(self) -> None:
        """Clear recorded scheduler metrics (useful between benchmark phases)."""
        self.scheduler.reset()

    # --------------------------------------------------------------- lifecycle
    def stop(self) -> None:
        """Release engine resources (closes the executor if this context owns it).

        Broadcast values that hold OS-level shared state (e.g. a CSR index
        exported to a :mod:`multiprocessing.shared_memory` segment) expose a
        ``release_shared()`` hook; stopping the context releases them so no
        ``/dev/shm`` segment outlives the run.  A context-owned block store
        is closed too, removing spill directories and any shuffle segment
        stranded by an aborted run.
        """
        for broadcast in self._broadcasts.values():
            value = getattr(broadcast, "_value", None)
            release = getattr(value, "release_shared", None)
            if callable(release):
                release()
        if self._owns_executor:
            self.executor.close()
        if self._owns_block_store:
            self.block_store.close()

    def __enter__(self) -> "EngineContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        return (
            f"EngineContext(app_name={self.app_name!r}, "
            f"default_parallelism={self.default_parallelism}, "
            f"executor={self.executor.name!r})"
        )
