"""The engine context — the ``SparkContext`` of the mini engine.

Create one :class:`EngineContext` per pipeline run.  It owns the scheduler
(metrics), broadcast variables and accumulators, and is the factory for RDDs.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any, Callable, TypeVar

from repro.engine.accumulators import Accumulator
from repro.engine.broadcast import Broadcast
from repro.engine.rdd import RDD, ParallelCollectionRDD
from repro.engine.scheduler import Scheduler
from repro.exceptions import EngineError

T = TypeVar("T")


class EngineContext:
    """Entry point of the mini dataflow engine.

    Parameters
    ----------
    default_parallelism:
        Number of partitions used by ``parallelize`` when not overridden and
        the default for shuffle outputs.
    app_name:
        Label used in logs and metric reports.
    """

    def __init__(self, default_parallelism: int = 4, app_name: str = "sparker") -> None:
        if default_parallelism <= 0:
            raise EngineError("default_parallelism must be positive")
        self.default_parallelism = default_parallelism
        self.app_name = app_name
        self.scheduler = Scheduler()
        self._next_broadcast_id = 0
        self._next_accumulator_id = 0
        self._broadcasts: list[Broadcast[Any]] = []
        self._accumulators: list[Accumulator[Any]] = []

    # ------------------------------------------------------------------ RDDs
    def parallelize(self, data: Sequence[Any], num_partitions: int | None = None) -> RDD:
        """Create an RDD from a Python sequence."""
        partitions = num_partitions or self.default_parallelism
        if partitions <= 0:
            raise EngineError("num_partitions must be positive")
        return ParallelCollectionRDD(self, data, partitions)

    def emptyRDD(self) -> RDD:
        """Create an RDD with no elements (single empty partition)."""
        return ParallelCollectionRDD(self, [], 1)

    def range(self, start: int, end: int | None = None, num_partitions: int | None = None) -> RDD:
        """Create an RDD of consecutive integers, like ``sc.range``."""
        if end is None:
            start, end = 0, start
        return self.parallelize(list(range(start, end)), num_partitions)

    # ----------------------------------------------------------- shared state
    def broadcast(self, value: T) -> Broadcast[T]:
        """Create a broadcast variable holding ``value``."""
        broadcast = Broadcast(self._next_broadcast_id, value)
        self._next_broadcast_id += 1
        self._broadcasts.append(broadcast)
        return broadcast

    def accumulator(
        self, initial: T, combine: Callable[[T, T], T] | None = None
    ) -> Accumulator[T]:
        """Create an accumulator starting at ``initial``."""
        accumulator = Accumulator(self._next_accumulator_id, initial, combine)
        self._next_accumulator_id += 1
        self._accumulators.append(accumulator)
        return accumulator

    # ---------------------------------------------------------------- metrics
    def metrics_summary(self) -> dict[str, Any]:
        """Return a summary of everything executed on this context so far."""
        return {
            "app_name": self.app_name,
            "default_parallelism": self.default_parallelism,
            "jobs": len(self.scheduler.jobs),
            "stages": len(self.scheduler.stages),
            "tasks": self.scheduler.total_tasks,
            "shuffle_records": self.scheduler.total_shuffle_records,
            "broadcasts": len(self._broadcasts),
            "accumulators": len(self._accumulators),
        }

    def reset_metrics(self) -> None:
        """Clear recorded scheduler metrics (useful between benchmark phases)."""
        self.scheduler.reset()

    def __repr__(self) -> str:
        return (
            f"EngineContext(app_name={self.app_name!r}, "
            f"default_parallelism={self.default_parallelism})"
        )
