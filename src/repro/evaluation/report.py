"""Textual reports: the library equivalent of the demo GUI's result panels."""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field


def format_table(rows: Sequence[Mapping[str, object]], *, title: str | None = None) -> str:
    """Render a list of uniform dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


@dataclass
class StageReport:
    """Metrics snapshot of one pipeline stage."""

    stage: str
    metrics: dict[str, object] = field(default_factory=dict)

    def line(self) -> str:
        """One-line rendering of the stage metrics."""
        parts = ", ".join(f"{key}={value}" for key, value in self.metrics.items())
        return f"[{self.stage}] {parts}"


@dataclass
class PipelineReport:
    """Collection of stage reports of one end-to-end run."""

    stages: list[StageReport] = field(default_factory=list)

    def add(self, stage: str, metrics: dict[str, object]) -> StageReport:
        """Record a new stage snapshot and return it."""
        report = StageReport(stage=stage, metrics=dict(metrics))
        self.stages.append(report)
        return report

    def get(self, stage: str) -> StageReport | None:
        """Return the most recent report of ``stage`` (or None)."""
        for report in reversed(self.stages):
            if report.stage == stage:
                return report
        return None

    def render(self) -> str:
        """Multi-line rendering of every stage."""
        return "\n".join(report.line() for report in self.stages)

    def as_rows(self) -> list[dict[str, object]]:
        """Rows suitable for :func:`format_table`."""
        rows = []
        for report in self.stages:
            row: dict[str, object] = {"stage": report.stage}
            row.update(report.metrics)
            rows.append(row)
        return rows
