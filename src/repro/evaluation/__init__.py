"""Evaluation metrics and reports for every pipeline stage."""

from repro.evaluation.metrics import (
    pair_metrics,
    PairMetrics,
    blocking_metrics,
    clustering_metrics,
)
from repro.evaluation.report import StageReport, PipelineReport, format_table

__all__ = [
    "pair_metrics",
    "PairMetrics",
    "blocking_metrics",
    "clustering_metrics",
    "StageReport",
    "PipelineReport",
    "format_table",
]
