"""Quality metrics shared by blocking, matching and clustering evaluation.

Every stage of the pipeline produces a set of pairs (candidate pairs after
blocking, matched pairs after matching, within-cluster pairs after
clustering); all of them are evaluated against the ground truth with the same
precision / recall / F1 machinery.  Blocking additionally reports the
reduction ratio against the naive all-pairs comparison count.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.clustering.base import EntityCluster, clusters_to_pairs
from repro.data.ground_truth import GroundTruth, canonical_pair
from repro.exceptions import EvaluationError


@dataclass
class PairMetrics:
    """Precision / recall / F1 of a pair set against the ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary for reports."""
        return {
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "precision": round(self.precision, 6),
            "recall": round(self.recall, 6),
            "f1": round(self.f1, 6),
        }


def pair_metrics(
    predicted_pairs: Iterable[tuple[int, int]],
    ground_truth: GroundTruth,
) -> PairMetrics:
    """Compare a predicted pair set with the ground truth."""
    if ground_truth is None:
        raise EvaluationError("pair_metrics requires a ground truth")
    predicted = {canonical_pair(a, b) for a, b in predicted_pairs}
    truth = ground_truth.pairs()
    true_positives = len(predicted & truth)
    return PairMetrics(
        true_positives=true_positives,
        false_positives=len(predicted) - true_positives,
        false_negatives=len(truth) - true_positives,
    )


def blocking_metrics(
    candidate_pairs: Iterable[tuple[int, int]],
    ground_truth: GroundTruth,
    max_comparisons: int,
) -> dict[str, float]:
    """Blocking-specific metrics: pair completeness, pair quality, reduction ratio.

    * *pair completeness* (PC) is the recall of the candidate set,
    * *pair quality* (PQ) is its precision,
    * *reduction ratio* (RR) is 1 - |candidates| / |all-pairs comparisons|.
    """
    metrics = pair_metrics(candidate_pairs, ground_truth)
    num_candidates = metrics.true_positives + metrics.false_positives
    reduction_ratio = 0.0
    if max_comparisons > 0:
        reduction_ratio = 1.0 - num_candidates / max_comparisons
    return {
        "pair_completeness": round(metrics.recall, 6),
        "pair_quality": round(metrics.precision, 6),
        "reduction_ratio": round(reduction_ratio, 6),
        "candidate_pairs": num_candidates,
        "f1": round(metrics.f1, 6),
    }


def clustering_metrics(
    clusters: Iterable[EntityCluster],
    ground_truth: GroundTruth,
) -> dict[str, float]:
    """Evaluate entity clusters by the pairs they assert (pairwise P/R/F1)."""
    cluster_list = list(clusters)
    metrics = pair_metrics(clusters_to_pairs(cluster_list), ground_truth)
    sizes = [cluster.size for cluster in cluster_list]
    return {
        "precision": round(metrics.precision, 6),
        "recall": round(metrics.recall, 6),
        "f1": round(metrics.f1, 6),
        "clusters": len(cluster_list),
        "max_cluster_size": max(sizes) if sizes else 0,
        "mean_cluster_size": round(sum(sizes) / len(sizes), 4) if sizes else 0.0,
    }
