#!/usr/bin/env python3
"""Quickstart: resolve a small product catalog end to end.

Runs the full SparkER pipeline (blocker → entity matcher → entity clusterer)
with the unsupervised default configuration on a synthetic Abt-Buy-like
dataset and prints the per-stage quality report.

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SparkER, SparkERConfig
from repro.data.synthetic import SyntheticConfig, generate_abt_buy_like
from repro.evaluation.report import format_table


def main() -> None:
    # 1. Load (here: generate) a clean-clean dataset with its ground truth.
    dataset = generate_abt_buy_like(SyntheticConfig(num_entities=200, seed=42))
    print("dataset:", dataset.summary())

    # 2. Run the pipeline with the unsupervised defaults (loose-schema
    #    blocking, entropy-weighted meta-blocking, Jaccard threshold matcher,
    #    connected-components clustering).
    pipeline = SparkER(SparkERConfig.unsupervised_default())
    result = pipeline.run(dataset.profiles, dataset.ground_truth)

    # 3. Inspect the per-stage report (the numbers the SparkER GUI displays).
    print()
    print(format_table(result.report.as_rows(), title="pipeline stages"))

    # 4. Look at a few resolved entities.
    print()
    print("resolved entities (first 3 with more than one profile):")
    shown = 0
    for entity in result.entities:
        if len(entity["profiles"]) < 2:
            continue
        print(f"  entity {entity['entity_id']}: profiles {entity['profiles']}")
        for attribute, values in sorted(entity["attributes"].items()):
            print(f"    {attribute}: {values[0]}")
        shown += 1
        if shown == 3:
            break

    print()
    print("summary:", result.summary())
    print("stage timings (s):", {k: round(v, 3) for k, v in result.timings.as_dict().items()})


if __name__ == "__main__":
    main()
