#!/usr/bin/env python3
"""Clean-clean product matching with loose-schema (BLAST) blocking.

This example mirrors the demo's headline scenario: two product catalogs with
*different schemas* (Abt-style ``name/description/price`` vs Buy-style
``title/short_descr/list_price/manufacturer``).  It shows each blocker stage
explicitly — loose-schema generation, blocking, purging, filtering,
entropy-weighted meta-blocking — and compares the result against plain
schema-agnostic blocking.

    python examples/product_deduplication.py
"""

from __future__ import annotations

from repro.blocking import BlockFiltering, BlockPurging, LooseSchemaTokenBlocking, TokenBlocking
from repro.blocking.stats import candidate_pair_stats, compute_blocking_stats
from repro.data.synthetic import SyntheticConfig, generate_abt_buy_like
from repro.evaluation.report import format_table
from repro.looseschema import AttributePartitioner, EntropyExtractor
from repro.metablocking import MetaBlocker


def main() -> None:
    dataset = generate_abt_buy_like(SyntheticConfig(num_entities=300, seed=7))
    profiles, truth = dataset.profiles, dataset.ground_truth
    max_comparisons = profiles.max_comparisons()
    print("dataset:", dataset.summary())

    # ------------------------------------------------------------------
    # Loose-schema generator: attribute partitioning + entropies.
    # ------------------------------------------------------------------
    partitioning = AttributePartitioner(threshold=0.1).partition(profiles)
    entropies = EntropyExtractor().extract(profiles, partitioning)
    print("\nattribute partitions (the loose schema):")
    for line in partitioning.describe():
        print("  " + line)
    print("cluster entropies:", {k: round(v, 3) for k, v in sorted(entropies.items())})

    # ------------------------------------------------------------------
    # Blocking pipeline, stage by stage.
    # ------------------------------------------------------------------
    rows = []

    loose_blocks = LooseSchemaTokenBlocking(
        partitioning, cluster_entropies=entropies
    ).block(profiles)
    rows.append(
        {"stage": "loose-schema token blocking",
         **compute_blocking_stats(loose_blocks, truth, max_comparisons=max_comparisons).as_dict()}
    )

    purged = BlockPurging(max_profile_fraction=0.5).purge(loose_blocks, len(profiles))
    rows.append(
        {"stage": "block purging",
         **compute_blocking_stats(purged, truth, max_comparisons=max_comparisons).as_dict()}
    )

    filtered = BlockFiltering(ratio=0.8).filter(purged)
    rows.append(
        {"stage": "block filtering",
         **compute_blocking_stats(filtered, truth, max_comparisons=max_comparisons).as_dict()}
    )

    blast = MetaBlocker("cbs", "wnp", use_entropy=True).run(filtered)
    rows.append(
        {"stage": "meta-blocking + entropy (BLAST)", "blocks": "-",
         **candidate_pair_stats(blast.candidate_pairs, truth, max_comparisons=max_comparisons)}
    )

    # Baseline: schema-agnostic token blocking + plain meta-blocking.
    agnostic_blocks = BlockFiltering(ratio=0.8).filter(
        BlockPurging().purge(TokenBlocking().block(profiles), len(profiles))
    )
    agnostic = MetaBlocker("cbs", "wnp", use_entropy=False).run(agnostic_blocks)
    rows.append(
        {"stage": "baseline: schema-agnostic meta-blocking", "blocks": "-",
         **candidate_pair_stats(agnostic.candidate_pairs, truth, max_comparisons=max_comparisons)}
    )

    print()
    print(format_table(rows, title="blocking pipeline (loose schema vs schema-agnostic)"))

    reduction = 1 - len(blast.candidate_pairs) / max(len(agnostic.candidate_pairs), 1)
    print(
        f"\nBLAST retains {len(blast.candidate_pairs)} candidate pairs vs "
        f"{len(agnostic.candidate_pairs)} for the schema-agnostic baseline "
        f"({reduction:.0%} fewer) at comparable recall."
    )


if __name__ == "__main__":
    main()
