#!/usr/bin/env python3
"""Run the blocking stack on the mini dataflow engine and inspect its metrics.

SparkER's contribution is making meta-blocking run on a MapReduce-like engine
(broadcast-join structure).  This example runs token blocking and the parallel
meta-blocking on the engine with different partition counts and prints the
engine metrics a Spark UI would show: tasks, shuffle volume, skew — and checks
the output is identical to the sequential reference.

    python examples/distributed_blocking.py
"""

from __future__ import annotations

from repro.blocking import BlockFiltering, BlockPurging, TokenBlocking
from repro.data.synthetic import SyntheticConfig, generate_abt_buy_like
from repro.engine import EngineContext
from repro.evaluation.report import format_table
from repro.metablocking import MetaBlocker, ParallelMetaBlocker


def main() -> None:
    dataset = generate_abt_buy_like(SyntheticConfig(num_entities=300, seed=5))
    profiles = dataset.profiles
    print("dataset:", dataset.summary())

    blocks = BlockFiltering().filter(
        BlockPurging().purge(TokenBlocking().block(profiles), len(profiles))
    )
    sequential = MetaBlocker("cbs", "wnp").run(blocks)
    print(f"\nsequential meta-blocking: {sequential.num_candidates} candidate pairs")

    rows = []
    for partitions in (1, 2, 4, 8):
        context = EngineContext(default_parallelism=partitions, app_name="distributed-blocking")
        result = ParallelMetaBlocker(context, "cbs", "wnp").run(blocks)
        stages = context.scheduler.stages
        rows.append(
            {
                "partitions": partitions,
                "tasks": context.scheduler.total_tasks,
                "shuffle_records": context.scheduler.total_shuffle_records,
                "max_skew": round(max((s.skew for s in stages), default=0.0), 2),
                "candidate_pairs": result.num_candidates,
                "identical_to_sequential": result.candidate_pairs == sequential.candidate_pairs,
            }
        )

    print()
    print(format_table(rows, title="broadcast-join parallel meta-blocking"))

    # The distributed token blocking path, for completeness.
    context = EngineContext(default_parallelism=8)
    distributed_blocks = TokenBlocking(engine=context).block(profiles)
    print(
        f"\ndistributed token blocking: {len(distributed_blocks)} blocks, "
        f"engine metrics: {context.metrics_summary()}"
    )


if __name__ == "__main__":
    main()
