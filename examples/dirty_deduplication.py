#!/usr/bin/env python3
"""Dirty ER: deduplicate a single noisy person registry.

Unlike the clean-clean product scenario, here one source contains multiple
records per real-world person (typos, abbreviated names, missing attributes).
The example runs schema-agnostic blocking + meta-blocking, a Jaccard matcher
and connected-components clustering, then shows how the transitivity
assumption groups whole duplicate clusters together — and compares the
alternative clustering algorithms.

    python examples/dirty_deduplication.py
"""

from __future__ import annotations

from repro import SparkER, SparkERConfig
from repro.clustering import make_clustering_algorithm
from repro.core.blocker import Blocker
from repro.core.entity_matcher import EntityMatcher
from repro.core.config import MatcherConfig
from repro.data.synthetic import generate_dirty_persons
from repro.evaluation.metrics import clustering_metrics
from repro.evaluation.report import format_table


def main() -> None:
    dataset = generate_dirty_persons(num_entities=200, max_duplicates=4, seed=19)
    print("dataset:", dataset.summary())

    # End-to-end pipeline with a schema-agnostic configuration (a single
    # source has a single schema, so the loose-schema generator is unneeded).
    config = SparkERConfig.schema_agnostic()
    config.matcher.similarity = "jaccard"
    config.matcher.threshold = 0.5
    result = SparkER(config).run(dataset.profiles, dataset.ground_truth)

    print()
    print(format_table(result.report.as_rows(), title="pipeline stages"))

    large_clusters = [c for c in result.clusters if c.size >= 3]
    print(f"\nclusters with 3+ duplicate records: {len(large_clusters)}")
    for cluster in large_clusters[:3]:
        print(f"  cluster {cluster.cluster_id}:")
        for profile_id in sorted(cluster.members):
            profile = dataset.profiles[profile_id]
            print(f"    {profile.original_id}: {profile.value_of('full_name')}")

    # Compare clustering algorithms on the same similarity graph.
    blocker_report = Blocker(config.blocker).run(dataset.profiles)
    graph = EntityMatcher(MatcherConfig(similarity="jaccard", threshold=0.5)).match(
        dataset.profiles, sorted(blocker_report.candidate_pairs)
    )
    rows = []
    for name in ("connected_components", "center", "merge_center"):
        clusters = make_clustering_algorithm(name).cluster(graph)
        rows.append({"algorithm": name, **clustering_metrics(clusters, dataset.ground_truth)})
    print()
    print(format_table(rows, title="clustering algorithm comparison"))


if __name__ == "__main__":
    main()
