#!/usr/bin/env python3
"""The supervised process-debugging workflow of the demo (Figure 6).

Replays the demo storyline programmatically:

1. sample the input (K seed profiles + likely matches + random profiles),
2. try the attribute-partitioning threshold at 1.0 (schema-agnostic blob),
3. lower it to 0.3 and watch candidate pairs drop,
4. manually split the attribute clusters and watch ground-truth pairs get lost,
5. inspect *why* they were lost (shared blocking keys),
6. enable meta-blocking with entropy for a further large reduction,
7. apply the tuned configuration to the full dataset in batch mode.

    python examples/process_debugging.py
"""

from __future__ import annotations

from repro import DebugSession, SparkERConfig
from repro.data.synthetic import SyntheticConfig, generate_abt_buy_like


def main() -> None:
    dataset = generate_abt_buy_like(SyntheticConfig(num_entities=300, seed=21))
    print("full dataset:", dataset.summary())

    config = SparkERConfig.unsupervised_default()
    config.sampling.num_seeds = 30   # K of the paper
    config.sampling.per_seed = 10    # k of the paper

    session = DebugSession(dataset.profiles, dataset.ground_truth, config, sample=True)
    print("debug sample:", session.sample.summary())

    # (a) threshold = 1.0: one blob cluster, schema-agnostic blocking.
    step_a = session.try_threshold(1.0, label="(a) threshold=1.0")
    print("\n(a) every attribute in the blob cluster:")
    for line in step_a.partitioning.describe():
        print("   " + line)

    # (b) threshold = 0.3: clusters appear; fewer candidates, precision up.
    step_b = session.try_threshold(0.3, label="(b) threshold=0.3")
    print("\n(b) clusters at threshold 0.3:")
    for line in step_b.partitioning.describe():
        print("   " + line)

    # (c) manual edit: put every attribute in its own cluster (a bad idea).
    manual = session.current_partitioning(0.3)
    next_cluster = max(manual.clusters) + 1
    for source, attribute in sorted(set().union(*manual.clusters.values())):
        manual.move_attribute(attribute, source, next_cluster)
        next_cluster += 1
    step_c = session.try_partitioning(manual, label="(c) manual split")

    # (d) debug the lost pairs of the manual configuration.
    print("\n(d) why did the manual split lose pairs?")
    for explanation in session.explain_lost_pairs(step_c, limit=2):
        print(explanation.render())

    # (e) meta-blocking with entropy.
    session.try_meta_blocking(threshold=0.3, use_entropy=True, label="(e) meta-blocking+entropy")

    print()
    print(session.history_table())

    # Batch mode: apply the tuned configuration to the full dataset.
    print("\napplying the tuned configuration to the full dataset (batch mode)...")
    result = session.apply_to_full_dataset(threshold=0.3, use_entropy=True)
    print("batch run summary:", result.summary())
    print("final cluster quality:", result.report.get("clusterer").metrics)


if __name__ == "__main__":
    main()
