"""Docs snippet checker: keep README/docs code blocks compilable and honest.

Walks every fenced code block in ``README.md`` and ``docs/*.md`` and checks:

* ``python`` blocks **compile**, and every ``import``/``from`` of a
  ``repro.*`` module resolves against the real package — including the
  imported attribute names — so a renamed class or moved module fails the
  docs build instead of rotting silently;
* ``bash`` blocks: every ``python -m repro.cli ...`` invocation (env-var
  prefixes and line continuations stripped) **parses against the actual
  argument parser**, so a documented flag that no longer exists fails here;
  plain ``python <path>`` invocations must point at files that exist.

Usage::

    PYTHONPATH=src python scripts/check_docs_snippets.py

Exit code 0 when every snippet passes, 1 otherwise (failures listed with
``file:line`` of the offending block).
"""

from __future__ import annotations

import ast
import importlib
import shlex
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]


def iter_code_blocks(path: Path):
    """Yield ``(language, start line, code)`` for each fenced block."""
    language = None
    start = 0
    lines: list[str] = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("```"):
            if language is None:
                language = stripped[3:].strip().lower() or "text"
                start = number + 1
                lines = []
            else:
                yield language, start, "\n".join(lines)
                language = None
        elif language is not None:
            lines.append(line)


def check_python_block(code: str, where: str) -> list[str]:
    try:
        tree = ast.parse(code)
    except SyntaxError as error:
        return [f"{where}: python block does not compile: {error}"]
    failures = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if not node.module.startswith("repro"):
                continue
            try:
                module = importlib.import_module(node.module)
            except ImportError as error:
                failures.append(f"{where}: import of {node.module!r} fails: {error}")
                continue
            for alias in node.names:
                if alias.name != "*" and not hasattr(module, alias.name):
                    try:
                        importlib.import_module(f"{node.module}.{alias.name}")
                    except ImportError:
                        failures.append(
                            f"{where}: {node.module!r} has no attribute "
                            f"{alias.name!r}"
                        )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if not alias.name.startswith("repro"):
                    continue
                try:
                    importlib.import_module(alias.name)
                except ImportError as error:
                    failures.append(
                        f"{where}: import of {alias.name!r} fails: {error}"
                    )
    return failures


def _logical_lines(code: str):
    """Bash lines with comments dropped and ``\\`` continuations joined."""
    pending = ""
    for raw in code.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        yield (pending + line).strip()
        pending = ""
    if pending.strip():
        yield pending.strip()


def check_bash_block(code: str, where: str) -> list[str]:
    failures = []
    for line in _logical_lines(code):
        tokens = shlex.split(line, comments=True)
        # Strip leading VAR=value environment prefixes.
        while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
            tokens = tokens[1:]
        if not tokens or tokens[0] != "python":
            continue
        if tokens[1:3] == ["-m", "repro.cli"]:
            cli_args = tokens[3:]
            from repro.cli import build_parser

            try:
                # argparse prints its usage message on failure; keep the
                # checker's output to the one-line failure below.
                import contextlib
                import io

                with contextlib.redirect_stderr(io.StringIO()):
                    build_parser().parse_args(cli_args)
            except SystemExit:
                failures.append(
                    f"{where}: CLI invocation does not parse: "
                    f"`python -m repro.cli {' '.join(cli_args)}`"
                )
        elif len(tokens) > 1 and tokens[1].endswith(".py"):
            if not (REPO_ROOT / tokens[1]).exists():
                failures.append(
                    f"{where}: `python {tokens[1]}` points at a missing file"
                )
    return failures


def main() -> int:
    failures: list[str] = []
    blocks = 0
    for path in DOC_FILES:
        if not path.exists():
            failures.append(f"{path}: documented file is missing")
            continue
        rel = path.relative_to(REPO_ROOT)
        for language, start, code in iter_code_blocks(path):
            where = f"{rel}:{start}"
            if language == "python":
                blocks += 1
                failures.extend(check_python_block(code, where))
            elif language in ("bash", "sh", "shell"):
                blocks += 1
                failures.extend(check_bash_block(code, where))
    if failures:
        for failure in failures:
            print(f"DOCS SNIPPET FAIL — {failure}", file=sys.stderr)
        return 1
    print(f"docs snippets ok: {blocks} code blocks checked across "
          f"{len(DOC_FILES)} files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
