"""Perf-regression guard for the meta-blocking kernel.

Re-runs ``benchmarks/bench_metablocking_kernel.py`` at its smallest size and
compares the measured kernel *speedups* (legacy time / kernel time, a ratio
that is largely machine-independent) against the committed
``BENCH_metablocking.json`` baseline.  The guard fails when any tracked path
(neighbourhood weighing, WNP, CNP) regresses by more than the tolerance —
i.e. retains less than ``1 - tolerance`` of the baseline speedup.

Usage::

    PYTHONPATH=src python scripts/bench_guard.py
    PYTHONPATH=src python scripts/bench_guard.py --tolerance 0.2

Also wired as an opt-in pytest marker::

    PYTHONPATH=src python -m pytest tests/test_bench_guard.py --bench-guard
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_metablocking.json"
TRACKED_PATHS = ("neighbourhood", "wnp", "cnp")


def check_against_baseline(tolerance: float = 0.2, baseline_path: Path = BASELINE_PATH) -> list[str]:
    """Run the guard; return a list of failure messages (empty = pass)."""
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    from bench_metablocking_kernel import run_benchmark

    baseline = json.loads(baseline_path.read_text())
    baseline_entry = baseline["entries"][0]
    guard_size = baseline_entry["num_entities"]

    current_entry = run_benchmark(sizes=[guard_size])[0]

    failures: list[str] = []
    for path in TRACKED_PATHS:
        expected = baseline_entry[path]["speedup"]
        measured = current_entry[path]["speedup"]
        floor = expected * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{path}: kernel speedup regressed to {measured:.1f}x "
                f"(baseline {expected:.1f}x, floor {floor:.1f}x)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional speedup regression (default 0.2 = 20%%)",
    )
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)

    failures = check_against_baseline(args.tolerance, args.baseline)
    if failures:
        for failure in failures:
            print(f"BENCH GUARD FAIL — {failure}", file=sys.stderr)
        return 1
    print("bench guard ok: kernel speedups within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
