"""Perf-regression guard for the meta-blocking kernel and the engine path.

Nine guards, all built on ratios that are largely machine-independent; most
compare against the committed ``BENCH_metablocking.json`` baseline, the
pipeline guard measures both sides fresh:

* **kernel** — re-runs ``benchmarks/bench_metablocking_kernel.py`` at its
  smallest size and checks the kernel *speedups* (legacy time / kernel
  time).  Fails when any tracked path (neighbourhood weighing, WNP, CNP)
  retains less than ``1 - tolerance`` of the baseline speedup.
* **end-to-end** — times the full ``ParallelMetaBlocker`` against the
  sequential ``MetaBlocker`` on the same blocks and checks the *overhead
  ratio* (engine wall-clock / sequential wall-clock).  Fails when the
  engine plumbing became more than ``1 + tolerance`` times as expensive
  relative to the algorithmic work as the committed baseline.
* **shuffle wire format** — re-measures the WNP/CNP vote-stage shuffle
  volume (records and pickled bytes) of the compact edge-id format against
  the legacy ``((a, b), (weight, count))`` tuple format.  Deterministic (no
  timing): fails when the byte reduction drops below the hard 40 percent
  floor or regresses below ``1 - tolerance`` of the committed reduction.
* **block store relay** — re-runs the WNP vote job under ``process:N`` with
  the shared-memory block store and checks that the bytes relayed through
  the driver (block refs only) stay at or below 5 percent of the committed
  driver-relay wire volume for the same scenario.  Deterministic: fails the
  moment shuffle payloads start crossing the driver again.
* **numpy kernel backend** — re-runs the python-vs-numpy backend comparison
  at the *largest* committed size and fails when the combined
  neighbourhood + WNP + CNP speedup of the vectorised kernel drops below
  the hard 3× floor, or any tracked path falls below ``1 - tolerance`` of
  its committed speedup.  Skips cleanly when numpy is not importable (the
  pure-python fallback has no vectorised kernel to guard).
* **pipeline runner** — times the ``SparkER`` facade against
  ``Pipeline.from_spec`` end-to-end on the same dataset and fails when the
  declarative stage-graph runner costs more than 5 percent over the facade
  (which itself runs through the same stage graph).
* **ER service** — checks the committed ``service_entries`` (ingest
  throughput and budgeted query latency of the long-lived service at up to
  10⁴ entities): the warm-query/cold-sweep speedup must stay above a hard
  floor at every committed size, and a fresh re-run at the smallest size
  must hold the committed ingest throughput within tolerance.
* **WAL durability overhead** — checks the committed ``service_wal_entries``
  and a fresh re-run: ingesting through the write-ahead log under the
  default ``fsync=batch`` policy must hold at least 50 percent of the
  non-WAL ingest rate for the same batch stream (a machine-independent
  ratio — crossing it means the durable write path itself regressed).
* **out-of-core scale** — checks the committed ``scale_entries`` (the
  10⁴/10⁵-entity out-of-core runs of ``benchmarks/bench_scalability.py``)
  for the memmap-vs-ram overhead and peak-RSS ceilings at the largest size,
  then re-runs the smallest size under both buffer backends in fresh
  subprocesses and fails on checksum divergence or RSS/overhead regression.

Usage::

    PYTHONPATH=src python scripts/bench_guard.py
    PYTHONPATH=src python scripts/bench_guard.py --tolerance 0.2 --e2e-tolerance 0.5

Also wired as an opt-in pytest marker::

    PYTHONPATH=src python -m pytest tests/test_bench_guard.py --bench-guard
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_metablocking.json"
TRACKED_PATHS = ("neighbourhood", "wnp", "cnp")


def check_against_baseline(tolerance: float = 0.2, baseline_path: Path = BASELINE_PATH) -> list[str]:
    """Run the guard; return a list of failure messages (empty = pass)."""
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    from bench_metablocking_kernel import run_benchmark

    baseline = json.loads(baseline_path.read_text())
    baseline_entry = baseline["entries"][0]
    guard_size = baseline_entry["num_entities"]

    current_entry = run_benchmark(sizes=[guard_size])[0]

    failures: list[str] = []
    for path in TRACKED_PATHS:
        expected = baseline_entry[path]["speedup"]
        measured = current_entry[path]["speedup"]
        floor = expected * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{path}: kernel speedup regressed to {measured:.1f}x "
                f"(baseline {expected:.1f}x, floor {floor:.1f}x)"
            )
    return failures


def check_e2e_against_baseline(
    tolerance: float = 0.5, baseline_path: Path = BASELINE_PATH
) -> list[str]:
    """Guard the end-to-end engine overhead; return failure messages.

    The e2e tolerance defaults looser than the kernel one because whole-job
    wall-clocks carry more scheduler noise than best-of-N micro timings.
    """
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    from bench_metablocking_kernel import run_e2e_benchmark

    baseline = json.loads(baseline_path.read_text())
    e2e_entries = baseline.get("e2e_entries")
    if not e2e_entries:
        return [
            "no e2e baseline committed — regenerate with "
            "`python benchmarks/bench_metablocking_kernel.py`"
        ]
    # Guard at the *largest* committed size: its whole-job wall-clock is long
    # enough that the overhead ratio is stable run-to-run (the smallest size
    # finishes in ~20ms, where scheduler jitter swamps the ratio).
    baseline_entry = max(e2e_entries, key=lambda entry: entry["num_entities"])
    guard_size = baseline_entry["num_entities"]

    current_entry = run_e2e_benchmark(sizes=[guard_size])[0]

    expected = baseline_entry["overhead"]
    measured = current_entry["overhead"]
    ceiling = expected * (1.0 + tolerance)
    if measured > ceiling:
        return [
            f"e2e: engine overhead regressed to {measured:.2f}x the sequential "
            f"path (baseline {expected:.2f}x, ceiling {ceiling:.2f}x)"
        ]
    return []


NUMPY_FLOOR = 3.0  # acceptance floor: numpy backend ≥3× the python backend
NUMPY_PATHS = ("neighbourhood", "wnp", "cnp")


def check_numpy_against_baseline(
    tolerance: float = 0.2, baseline_path: Path = BASELINE_PATH
) -> list[str]:
    """Guard the numpy kernel backend speedups; return failure messages.

    The acceptance criterion (combined speedup ≥ ``NUMPY_FLOOR``) is
    enforced on the *largest* committed size — re-measured, not just read
    from the baseline — plus a baseline-relative tolerance per tracked path.
    """
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    from bench_metablocking_kernel import run_numpy_benchmark

    from repro.metablocking.backends import numpy_available

    if not numpy_available():
        print("numpy not importable — skipping the numpy backend guard")
        return []
    baseline = json.loads(baseline_path.read_text())
    numpy_entries = baseline.get("numpy_entries")
    if not numpy_entries:
        return [
            "no numpy-backend baseline committed — regenerate with "
            "`python benchmarks/bench_metablocking_kernel.py`"
        ]
    failures: list[str] = []
    largest = max(numpy_entries, key=lambda entry: entry["num_entities"])
    committed_combined = largest["combined"]["speedup"]
    if committed_combined < NUMPY_FLOOR:
        failures.append(
            f"numpy: committed combined speedup {committed_combined:.1f}x at the "
            f"largest size is below the {NUMPY_FLOOR:.0f}x floor"
        )
    current = run_numpy_benchmark(sizes=[largest["num_entities"]])[0]
    measured_combined = current["combined"]["speedup"]
    if measured_combined < NUMPY_FLOOR:
        failures.append(
            f"numpy: combined neighbourhood+WNP+CNP speedup {measured_combined:.1f}x "
            f"is below the {NUMPY_FLOOR:.0f}x floor (committed "
            f"{committed_combined:.1f}x)"
        )
    for path in NUMPY_PATHS:
        expected = largest[path]["speedup"]
        measured = current[path]["speedup"]
        floor = expected * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"numpy/{path}: backend speedup regressed to {measured:.1f}x "
                f"(baseline {expected:.1f}x, floor {floor:.1f}x)"
            )
    return failures


PIPELINE_CEILING = 1.05  # declarative runner must stay within 5% of the facade


def check_pipeline_against_facade(
    ceiling: float = PIPELINE_CEILING,
) -> list[str]:
    """Guard the facade-vs-pipeline-runner overhead; return failure messages.

    The facade is a thin wrapper over the canonical pipeline spec, so the
    declarative runner going through ``Pipeline.from_spec`` must not cost
    more than ``ceiling`` times the facade's end-to-end wall-clock.  Both
    sides are measured fresh (best-of-N on the same dataset), so no committed
    baseline is needed — the ratio is machine-independent by construction.
    """
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    from bench_pipeline import DEFAULT_SIZES, run_pipeline_benchmark

    # Only the largest default size: long enough that scheduler jitter does
    # not swamp a 5% ratio, and the smaller sweep sizes would be discarded.
    entry = run_pipeline_benchmark(sizes=DEFAULT_SIZES[-1:])[0]
    overhead = entry["overhead"]
    if overhead > ceiling:
        return [
            f"pipeline: declarative runner overhead {overhead:.3f}x the facade "
            f"on {entry['num_entities']} entities (ceiling {ceiling:.2f}x)"
        ]
    return []


SHUFFLE_FLOOR = 0.40  # acceptance floor: ≥40% fewer vote-stage shuffle bytes
SHUFFLE_JOBS = ("wnp", "cnp")


def check_shuffle_against_baseline(
    tolerance: float = 0.1, baseline_path: Path = BASELINE_PATH
) -> list[str]:
    """Guard the vote-stage shuffle wire format; return failure messages.

    The measured quantity is deterministic (pickled bytes of the vote
    records, no wall-clock), so the tolerance only absorbs dataset-shape
    drift when the synthetic generator changes, and a tight default is safe.
    """
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    from bench_metablocking_kernel import run_shuffle_benchmark

    baseline = json.loads(baseline_path.read_text())
    shuffle_entries = baseline.get("shuffle_entries")
    if not shuffle_entries:
        return [
            "no shuffle baseline committed — regenerate with "
            "`python benchmarks/bench_metablocking_kernel.py`"
        ]
    failures: list[str] = []
    # The acceptance criterion lives on the *largest* committed scenario.
    largest = max(shuffle_entries, key=lambda entry: entry["num_entities"])
    for job in SHUFFLE_JOBS:
        committed = largest[job]["bytes_reduction"]
        if committed < SHUFFLE_FLOOR:
            failures.append(
                f"shuffle/{job}: committed byte reduction {committed:.1%} on the "
                f"largest scenario is below the {SHUFFLE_FLOOR:.0%} floor"
            )
    # Re-measure at the smallest size (fast, still deterministic).
    baseline_entry = shuffle_entries[0]
    guard_size = baseline_entry["num_entities"]
    current_entry = run_shuffle_benchmark(sizes=[guard_size])[0]
    for job in SHUFFLE_JOBS:
        expected = baseline_entry[job]["bytes_reduction"]
        measured = current_entry[job]["bytes_reduction"]
        floor = max(SHUFFLE_FLOOR, expected * (1.0 - tolerance))
        if measured < floor:
            failures.append(
                f"shuffle/{job}: vote-stage byte reduction regressed to "
                f"{measured:.1%} (baseline {expected:.1%}, floor {floor:.1%})"
            )
        if current_entry[job]["edge_id_records"] > baseline_entry[job]["edge_id_records"]:
            failures.append(
                f"shuffle/{job}: shuffled records grew to "
                f"{current_entry[job]['edge_id_records']} "
                f"(baseline {baseline_entry[job]['edge_id_records']})"
            )
    return failures


BLOCKSTORE_RELAY_CEILING = 0.05  # acceptance: driver-relayed bytes ≤ 5% of the
# committed shuffle_entries (PR 6) wire volume for the same vote scenario


def check_blockstore_against_baseline(
    baseline_path: Path = BASELINE_PATH,
) -> list[str]:
    """Guard the peer-to-peer shuffle block store; return failure messages.

    Re-runs the WNP vote job (the ``shuffle_entries`` scenario) under
    ``process:N`` with the shared-memory block store and fails when the
    bytes relayed through the driver exceed ``BLOCKSTORE_RELAY_CEILING``
    times the committed driver-relay wire volume — the ``edge_id_bytes`` of
    the matching ``shuffle_entries`` entry.  Deterministic (pickled ref and
    payload bytes, no wall-clock), so no timing tolerance is needed; the
    benchmark itself asserts the vote maps are identical across stores
    before any volume is reported.
    """
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    from bench_metablocking_kernel import run_blockstore_benchmark

    baseline = json.loads(baseline_path.read_text())
    blockstore_entries = baseline.get("blockstore_entries")
    if not blockstore_entries:
        return [
            "no block-store baseline committed — regenerate with "
            "`python benchmarks/bench_metablocking_kernel.py`"
        ]
    failures: list[str] = []
    # The acceptance criterion lives on the *largest* committed scenario:
    # the driver-relay volume grows with the graph while the ref volume
    # stays a near-constant handful of block descriptors, so the largest
    # size is where the ≤5% contract is meaningful (at tiny sizes the fixed
    # ref cost can approach the payload itself).
    largest = max(blockstore_entries, key=lambda entry: entry["num_entities"])
    committed_reduction = largest["relay_reduction"]
    if committed_reduction < 1.0 - BLOCKSTORE_RELAY_CEILING:
        failures.append(
            f"blockstore: committed relay reduction {committed_reduction:.1%} on "
            f"the largest scenario is below the "
            f"{1.0 - BLOCKSTORE_RELAY_CEILING:.0%} floor"
        )
    # Anchor the ceiling to the PR 6 shuffle_entries wire volume when the
    # matching scenario is committed (the driver store relays exactly the
    # vote payload, so the two baselines must agree byte-for-byte).
    reference = largest["driver"]["relay_bytes"]
    for wire_entry in baseline.get("shuffle_entries", []):
        if wire_entry["num_entities"] == largest["num_entities"]:
            committed_wire = wire_entry["wnp"]["edge_id_bytes"]
            if committed_wire != reference:
                failures.append(
                    f"blockstore: committed driver relay {reference}B disagrees "
                    f"with the shuffle_entries wire volume {committed_wire}B "
                    f"for {largest['num_entities']} entities — regenerate both"
                )
            reference = committed_wire
            break

    current = run_blockstore_benchmark(
        sizes=[largest["num_entities"]], workers=largest.get("workers", 2)
    )[0]
    measured_relay = current["shared_memory"]["relay_bytes"]
    ceiling_bytes = BLOCKSTORE_RELAY_CEILING * reference
    if measured_relay > ceiling_bytes:
        failures.append(
            f"blockstore: shared-memory store relayed {measured_relay}B through "
            f"the driver under process:{current['workers']} — above the "
            f"{BLOCKSTORE_RELAY_CEILING:.0%} ceiling ({ceiling_bytes:.0f}B) of "
            f"the committed {reference}B driver-relay baseline"
        )
    if current["driver"]["relay_bytes"] != current["driver"]["payload_bytes"]:
        failures.append(
            "blockstore: driver store relay bytes no longer equal the bucket "
            "payload bytes — the relay accounting changed"
        )
    return failures


SCALE_OVERHEAD_CEILING = 1.5  # memmap meta-blocking ≤ 1.5× the ram wall-clock
SCALE_RSS_CEILING = 1.15  # memmap peak RSS ≤ 1.15× the ram peak RSS


def check_scale_against_baseline(
    tolerance: float = 0.25, baseline_path: Path = BASELINE_PATH
) -> list[str]:
    """Guard the out-of-core scale baseline; return failure messages.

    Two layers.  Committed-side (no re-run, so the 10⁵-entity run stays
    offline): at the *largest* committed size the memmap buffer backend must
    stay within ``SCALE_OVERHEAD_CEILING`` of the ram wall-clock and within
    ``SCALE_RSS_CEILING`` of the ram peak RSS — the out-of-core index must
    not cost real time or, absurdly, more memory.  Re-measured (CI-
    affordable): the *smallest* committed size re-runs under both buffer
    backends in fresh subprocesses; fails when the retained-edge checksums
    diverge (bit-for-bit acceptance), when the measured memmap overhead
    exceeds the ceiling, or when the memmap peak RSS grows beyond
    ``1 + tolerance`` of its committed value.  Skips when numpy is missing
    (the memmap backend requires it).
    """
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    from bench_scalability import run_scale_benchmark

    from repro.metablocking.backends import numpy_available

    if not numpy_available():
        print("numpy not importable — skipping the out-of-core scale guard")
        return []
    baseline = json.loads(baseline_path.read_text())
    scale_entries = baseline.get("scale_entries")
    if not scale_entries:
        return [
            "no scale baseline committed — regenerate with "
            "`python benchmarks/bench_scalability.py`"
        ]
    failures: list[str] = []
    largest = max(scale_entries, key=lambda entry: entry["num_entities"])
    if largest["memmap_overhead"] > SCALE_OVERHEAD_CEILING:
        failures.append(
            f"scale: committed memmap overhead {largest['memmap_overhead']:.2f}x "
            f"at {largest['num_entities']} entities is above the "
            f"{SCALE_OVERHEAD_CEILING:.1f}x ceiling"
        )
    if largest["memmap_rss_ratio"] > SCALE_RSS_CEILING:
        failures.append(
            f"scale: committed memmap peak RSS is "
            f"{largest['memmap_rss_ratio']:.2f}x the ram peak at "
            f"{largest['num_entities']} entities (ceiling {SCALE_RSS_CEILING:.2f}x)"
        )

    smallest = min(scale_entries, key=lambda entry: entry["num_entities"])
    guard_size = smallest["num_entities"]
    # run_scale_benchmark raises AssertionError itself when the ram and
    # memmap checksums diverge — surface that as a guard failure.
    try:
        current = run_scale_benchmark(sizes=[guard_size])[0]
    except AssertionError as error:
        return failures + [f"scale: {error}"]
    if current["checksum"] != smallest["checksum"]:
        failures.append(
            f"scale: retained-edge checksum at {guard_size} entities changed to "
            f"{current['checksum']} (committed {smallest['checksum']}) — the "
            "meta-blocking output drifted; regenerate the baseline if intended"
        )
    overhead_ceiling = max(
        SCALE_OVERHEAD_CEILING, smallest["memmap_overhead"] * (1.0 + tolerance)
    )
    if current["memmap_overhead"] > overhead_ceiling:
        failures.append(
            f"scale: memmap overhead regressed to "
            f"{current['memmap_overhead']:.2f}x the ram wall-clock at "
            f"{guard_size} entities (committed {smallest['memmap_overhead']:.2f}x, "
            f"ceiling {overhead_ceiling:.2f}x)"
        )
    committed_rss = smallest["memmap"]["max_rss_kb"]
    rss_ceiling = committed_rss * (1.0 + tolerance)
    measured_rss = current["memmap"]["max_rss_kb"]
    if measured_rss > rss_ceiling:
        failures.append(
            f"scale: memmap peak RSS regressed to {measured_rss} KB at "
            f"{guard_size} entities (committed {committed_rss} KB, ceiling "
            f"{rss_ceiling:.0f} KB)"
        )
    return failures


SERVICE_WARM_SPEEDUP_FLOOR = 20.0
SERVICE_INGEST_FLOOR = 1_000.0  # profiles/s — an order below any sane run
SERVICE_WAL_RATE_FLOOR = 0.5  # batch-fsync ingest / non-WAL ingest


def check_service_against_baseline(
    tolerance: float = 0.5, baseline_path: Path = BASELINE_PATH
) -> list[str]:
    """Guard the ER-service ingest/query baseline; return failure messages.

    Committed-side (no re-run, covers the 10⁴-entity entry): the cached
    progressive prefix must keep warm budgeted queries at least
    ``SERVICE_WARM_SPEEDUP_FLOOR`` times cheaper than the cold ranking
    sweep at every committed size — that ratio is machine-independent and
    collapsing it means the prefix cache stopped working.  Re-measured
    (CI-affordable): the smallest committed size re-runs fresh; fails when
    ingest throughput drops below ``1 - tolerance`` of the committed
    profiles/s (or below the absolute ``SERVICE_INGEST_FLOOR``), or when
    the warm-query speedup falls below the floor.
    """
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    from bench_service import run_service_benchmark

    baseline = json.loads(baseline_path.read_text())
    service_entries = baseline.get("service_entries")
    if not service_entries:
        return [
            "no service baseline committed — regenerate with "
            "`python benchmarks/bench_service.py`"
        ]
    failures: list[str] = []
    for entry in service_entries:
        if entry["cold_over_warm"] < SERVICE_WARM_SPEEDUP_FLOOR:
            failures.append(
                f"service: committed warm-query speedup {entry['cold_over_warm']:.1f}x "
                f"at {entry['num_entities']} entities is below the "
                f"{SERVICE_WARM_SPEEDUP_FLOOR:.0f}x floor"
            )

    smallest = min(service_entries, key=lambda entry: entry["num_entities"])
    guard_size = smallest["num_entities"]
    current = run_service_benchmark(sizes=[guard_size])[0]
    if current["profiles"] != smallest["profiles"]:
        failures.append(
            f"service: ingest at {guard_size} entities appended "
            f"{current['profiles']} profiles (committed {smallest['profiles']}) — "
            "the served dataset drifted; regenerate the baseline if intended"
        )
    throughput_floor = max(
        SERVICE_INGEST_FLOOR, smallest["profiles_per_s"] * (1.0 - tolerance)
    )
    if current["profiles_per_s"] < throughput_floor:
        failures.append(
            f"service: ingest throughput regressed to "
            f"{current['profiles_per_s']:.0f} profiles/s at {guard_size} entities "
            f"(committed {smallest['profiles_per_s']:.0f}, floor "
            f"{throughput_floor:.0f})"
        )
    if current["cold_over_warm"] < SERVICE_WARM_SPEEDUP_FLOOR:
        failures.append(
            f"service: warm-query speedup collapsed to "
            f"{current['cold_over_warm']:.1f}x at {guard_size} entities "
            f"(floor {SERVICE_WARM_SPEEDUP_FLOOR:.0f}x) — the ranked-prefix "
            "cache is no longer absorbing repeat queries"
        )
    return failures


def check_service_wal_against_baseline(
    baseline_path: Path = BASELINE_PATH,
) -> list[str]:
    """Guard the WAL durability overhead; return failure messages.

    The write-ahead ingest log must stay cheap: the committed
    ``service_wal_entries`` and a fresh re-run must both hold the default
    ``fsync=batch`` ingest rate at or above ``SERVICE_WAL_RATE_FLOOR``
    (50 percent) of the non-WAL rate for the same batch stream — the ratio
    is machine-independent, so crossing it means the logging path itself
    regressed (per-record work, extra fsyncs, serialisation bloat), not the
    machine.
    """
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    from bench_service import run_wal_benchmark

    baseline = json.loads(baseline_path.read_text())
    wal_entries = baseline.get("service_wal_entries")
    if not wal_entries:
        return [
            "no service WAL baseline committed — regenerate with "
            "`python benchmarks/bench_service.py`"
        ]
    failures: list[str] = []
    committed = wal_entries[0]
    if committed["batch_over_none"] < SERVICE_WAL_RATE_FLOOR:
        failures.append(
            f"service-wal: committed batch-fsync ingest holds only "
            f"{committed['batch_over_none']:.0%} of the non-WAL rate at "
            f"{committed['num_entities']} entities (floor "
            f"{SERVICE_WAL_RATE_FLOOR:.0%})"
        )
    current = run_wal_benchmark(num_entities=committed["num_entities"])[0]
    if current["profiles"] != committed["profiles"]:
        failures.append(
            f"service-wal: ingest appended {current['profiles']} profiles "
            f"(committed {committed['profiles']}) — the served dataset "
            "drifted; regenerate the baseline if intended"
        )
    if current["batch_over_none"] < SERVICE_WAL_RATE_FLOOR:
        failures.append(
            f"service-wal: batch-fsync ingest dropped to "
            f"{current['batch_over_none']:.0%} of the non-WAL rate "
            f"({current['batch_profiles_per_s']:.0f} vs "
            f"{current['none_profiles_per_s']:.0f} profiles/s, floor "
            f"{SERVICE_WAL_RATE_FLOOR:.0%}) — the durable write path got "
            "more expensive"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional kernel-speedup regression (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--e2e-tolerance",
        type=float,
        default=0.5,
        help="allowed fractional e2e overhead increase (default 0.5 = 50%%)",
    )
    parser.add_argument(
        "--shuffle-tolerance",
        type=float,
        default=0.1,
        help="allowed fractional shuffle byte-reduction regression (default 0.1 = 10%%)",
    )
    parser.add_argument(
        "--numpy-tolerance",
        type=float,
        default=0.2,
        help="allowed fractional numpy-backend speedup regression (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--pipeline-ceiling",
        type=float,
        default=PIPELINE_CEILING,
        help="maximum pipeline-runner/facade wall-clock ratio (default 1.05)",
    )
    parser.add_argument(
        "--scale-tolerance",
        type=float,
        default=0.25,
        help="allowed fractional memmap RSS/overhead regression at the "
        "smallest committed scale size (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--service-tolerance",
        type=float,
        default=0.5,
        help="allowed fractional service ingest-throughput regression at the "
        "smallest committed size (default 0.5 = 50%%)",
    )
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)

    failures = check_against_baseline(args.tolerance, args.baseline)
    failures += check_e2e_against_baseline(args.e2e_tolerance, args.baseline)
    failures += check_shuffle_against_baseline(args.shuffle_tolerance, args.baseline)
    failures += check_blockstore_against_baseline(args.baseline)
    failures += check_numpy_against_baseline(args.numpy_tolerance, args.baseline)
    failures += check_pipeline_against_facade(args.pipeline_ceiling)
    failures += check_scale_against_baseline(args.scale_tolerance, args.baseline)
    failures += check_service_against_baseline(args.service_tolerance, args.baseline)
    failures += check_service_wal_against_baseline(args.baseline)
    if failures:
        for failure in failures:
            print(f"BENCH GUARD FAIL — {failure}", file=sys.stderr)
        return 1
    print(
        "bench guard ok: kernel speedups, e2e engine overhead, vote-stage "
        "shuffle wire format, block-store relay volume, numpy backend "
        "speedups, pipeline-runner overhead, out-of-core scale, "
        "service ingest/query and WAL durability baselines within tolerance"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
