#!/usr/bin/env python
"""CI smoke driver for the ER service.

Starts ``python -m repro.cli serve`` on an ephemeral port with a dedicated
temp root, then drives the whole request surface over real HTTP:

1. ``ping`` (the CLI healthcheck helper) must succeed;
2. ingest two batches into one collection (plus one into a second tenant);
3. a budgeted match query must honour the budget and return the documented
   response schema;
4. a delta-refreshed candidates query must return well-formed weighted pairs;
5. ``/metrics`` must report the traffic with per-endpoint histograms;
6. after SIGTERM the server must exit 0 and leave **zero** ``repro-*``
   artifacts in its temp root.

Exits non-zero with a diagnostic on the first violated expectation.  Runs on
the no-numpy leg too — the service must not require the vectorised kernel.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import urllib.error
import urllib.request


def fail(message: str) -> None:
    print(f"service smoke FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def expect(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def request(port: int, method: str, path: str, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def profile_batch(start: int, count: int) -> dict:
    words = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"]
    return {
        "profiles": [
            {
                "id": start + offset,
                "attributes": {
                    "name": f"{words[(start + offset) % 6]} {words[(start + offset) % 4]}",
                    "city": words[(start + offset) % 3],
                },
            }
            for offset in range(count)
        ]
    }


def main() -> int:
    tmp_root = tempfile.mkdtemp(prefix="service-smoke-")
    env = dict(os.environ)
    env["REPRO_TMPDIR"] = tmp_root
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    port = None
    try:
        for _ in range(400):
            line = server.stdout.readline()
            if not line:
                break
            print(f"server: {line.rstrip()}")
            if line.startswith("serving on "):
                port = int(line.strip().rsplit(":", 1)[1])
                break
        expect(port is not None, "server never announced its port")

        ping = subprocess.run(
            [sys.executable, "-m", "repro.cli", "ping", "--port", str(port),
             "--timeout", "30"],
            env=env,
        )
        expect(ping.returncode == 0, "repro.cli ping reported unhealthy")

        status, first = request(
            port, "POST", "/collections/smoke/profiles", profile_batch(0, 40)
        )
        expect(status == 201, f"first ingest returned {status}: {first}")
        expect(first["appended"] == 40, f"bad ingest summary: {first}")
        status, second = request(
            port, "POST", "/collections/smoke/profiles", profile_batch(40, 20)
        )
        expect(status == 201 and second["total_profiles"] == 60,
               f"second ingest wrong: {second}")
        status, _other = request(
            port, "POST", "/collections/tenant2/profiles", profile_batch(0, 5)
        )
        expect(status == 201, "second tenant ingest failed")

        budget = 25
        status, matches = request(
            port, "GET", f"/collections/smoke/matches/0?budget={budget}"
        )
        expect(status == 200, f"match query returned {status}: {matches}")
        for key in ("profile_id", "budget", "scheduled", "candidates", "matches"):
            expect(key in matches, f"match response missing {key!r}: {matches}")
        expect(matches["budget"] == budget, "echoed budget differs")
        expect(len(matches["candidates"]) <= budget, "budget exceeded")
        expect(
            all(isinstance(pair, list) and len(pair) == 2
                for pair in matches["candidates"]),
            "candidates are not id pairs",
        )
        expect(
            all(0 in pair for pair in matches["matches"]),
            "matches contain pairs without the queried profile",
        )

        status, candidates = request(
            port, "GET", "/collections/smoke/candidates/0"
        )
        expect(status == 200, f"candidates query returned {status}")
        expect(candidates["refresh_mode"] in ("full", "local"),
               f"bad refresh mode: {candidates}")
        for entry in candidates["candidates"]:
            expect(
                sorted(entry) == ["pair", "weight"] and 0 in entry["pair"],
                f"malformed candidate entry: {entry}",
            )

        status, metrics = request(port, "GET", "/metrics")
        expect(status == 200, "metrics endpoint failed")
        expect(metrics["errors"] == 0, f"service recorded errors: {metrics}")
        expect(set(metrics["collections"]) == {"smoke", "tenant2"},
               f"wrong tenant listing: {sorted(metrics['collections'])}")
        endpoint = metrics["endpoints"].get(
            "GET /collections/{name}/matches/{profile_id}"
        )
        expect(bool(endpoint) and endpoint["count"] >= 1,
               "match endpoint histogram missing")
        expect(endpoint["p95"] >= endpoint["p50"] >= 0.0,
               f"non-monotone latency quantiles: {endpoint}")
    finally:
        server.send_signal(signal.SIGTERM)
        remainder = server.stdout.read()
        returncode = server.wait(timeout=60)
        if remainder:
            print(f"server: {remainder.rstrip()}")

    expect(returncode == 0, f"server exited with {returncode}")
    leaked = [name for name in os.listdir(tmp_root) if name.startswith("repro-")]
    expect(leaked == [], f"leaked artifacts in {tmp_root}: {leaked}")
    os.rmdir(tmp_root)
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
