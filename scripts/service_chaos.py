"""Service-layer chaos harness: kill the process, replay the WAL, compare.

Each scenario runs a **child** service process (this script with ``--child``)
that ingests a deterministic sequence of profile batches into a WAL-backed
:class:`~repro.service.store.CollectionStore`, snapshots midway, and is
killed at a precise fault point via ``REPRO_SERVICE_FAULT`` (see
:mod:`repro.engine.faults`).  The parent then recovers the store from the
surviving snapshot + log (:meth:`CollectionStore.recover`) and asserts that
the recovered state is **bit-for-bit identical** to an uncrashed twin that
ingested the same durable prefix of batches:

* the recovered profile count is a whole number of batches (a batch either
  fully happened or never happened — no torn batches);
* every *acked* batch (the child printed its ack before dying) survived;
* every shared CSR buffer of the compacted index is byte-identical to the
  twin's, and ``matches``/``candidates`` answers agree exactly;
* recovering twice from the same disk state yields the same fingerprint
  (replay idempotence);
* no ``repro-*`` temp artifacts leak into the WAL directory.

Kill points cover the full write path: before the log write, after the log
but before the index apply, after the apply but before the ack, mid-snapshot
(checkpoint written, log not yet truncated), mid-compaction, mid-truncate
(rewrite temp written, rename pending), plus a torn-tail scenario where the
parent appends a partial record to the log before recovering.

Usage::

    PYTHONPATH=src python scripts/service_chaos.py             # full matrix
    PYTHONPATH=src python scripts/service_chaos.py -s torn-tail
"""

from __future__ import annotations

import argparse
import hashlib
import os
import struct
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")
if SRC_ROOT not in sys.path:
    sys.path.insert(0, SRC_ROOT)

COLLECTION = "demo"
BATCH_SIZE = 8
NUM_BATCHES = 6
SNAPSHOT_AFTER = 3  # snapshot once this many batches are applied

# name -> (fault clause for the child, child queries per batch, parent tears
# the log tail afterwards).  ``#5`` means the 5th hit of the point — during
# the 5th ingest batch, i.e. after the snapshot truncated the log.
SCENARIOS = {
    "kill-before-log": ("crash@wal.append#5", False, False),
    "kill-logged-unapplied": (f"crash@ingest.apply.{COLLECTION}#5", False, False),
    "kill-applied-unacked": (f"crash@ingest.ack.{COLLECTION}#5", False, False),
    "kill-mid-snapshot": (f"crash@snapshot.save.{COLLECTION}#1", False, False),
    "kill-mid-compaction": (f"crash@compact.{COLLECTION}#2", True, False),
    "kill-mid-truncate": ("crash@wal.truncate#1", False, False),
    "torn-tail": (None, False, True),
}


class ChaosFailure(AssertionError):
    """A chaos scenario violated the recovery contract."""


def batch_payload(batch_index: int) -> dict:
    """Deterministic ingest batch ``batch_index`` (ids are explicit)."""
    profiles = []
    for offset in range(BATCH_SIZE):
        pid = batch_index * BATCH_SIZE + offset
        profiles.append(
            {
                "id": pid,
                "attributes": {
                    "name": f"alpha{pid % 5} beta{pid % 7} gamma{(pid * 3) % 11}",
                    "city": f"city{pid % 4}",
                },
            }
        )
    return {"profiles": profiles}


# ------------------------------------------------------------------- child
def run_child(wal_dir: str, snapshot_dir: str, *, query: bool) -> None:
    """Ingest the batch sequence, snapshotting midway; acks go to stdout."""
    from repro.service.store import CollectionStore

    store = CollectionStore(snapshot_dir=snapshot_dir, wal_dir=wal_dir)
    collection = store.get_or_create(COLLECTION)
    for batch in range(NUM_BATCHES):
        collection.ingest(batch_payload(batch))
        print(f"acked {batch}", flush=True)
        if query:
            collection.matches(0, 20)
        if batch + 1 == SNAPSHOT_AFTER:
            store.snapshot(COLLECTION)
            print("snapshotted", flush=True)
    store.close_all()
    print("done", flush=True)


# ------------------------------------------------------------------ parent
def build_twin(num_batches: int):
    """An uncrashed collection that ingested the first ``num_batches``."""
    from repro.service.collection import CollectionConfig, ServiceCollection

    twin = ServiceCollection(CollectionConfig(name=COLLECTION))
    for batch in range(num_batches):
        twin.ingest(batch_payload(batch))
    return twin


def state_fingerprint(collection) -> dict:
    """Everything two equivalent collections must agree on, hashable."""
    from repro.metablocking.index import _SHARED_FIELDS

    csr = collection.index.materialise()
    digest = hashlib.sha256()
    for field, _typecode in _SHARED_FIELDS:
        digest.update(getattr(csr, field).tobytes())
    return {
        "profile_ids": collection.index.profile_ids(),
        "csr_sha256": digest.hexdigest(),
        "matches": collection.matches(0, 25),
        "candidates": collection.candidates(0),
    }


def tear_log_tail(wal_dir: str) -> None:
    """Append a partial record: a header promising more bytes than exist."""
    path = os.path.join(wal_dir, COLLECTION + ".wal")
    with open(path, "ab") as handle:
        handle.write(struct.pack("<QII", 999, 100, 0) + b"torn tail!")


def run_scenario(name: str, base_dir: "str | None" = None) -> dict:
    """Run one scenario end to end; raises :class:`ChaosFailure` on breach."""
    from repro.engine import tmpfiles
    from repro.engine.faults import CRASH_EXIT_CODE
    from repro.service.store import CollectionStore

    fault, query, torn = SCENARIOS[name]
    own_dir = None
    if base_dir is None:
        own_dir = tempfile.mkdtemp(prefix="repro-chaos-")
        base_dir = own_dir
    wal_dir = os.path.join(base_dir, "wal")
    snapshot_dir = os.path.join(base_dir, "snap")

    child_args = [
        sys.executable, os.path.abspath(__file__), "--child",
        "--wal-dir", wal_dir, "--snapshot-dir", snapshot_dir,
    ]
    if query:
        child_args.append("--query")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    if fault:
        env["REPRO_SERVICE_FAULT"] = fault
    else:
        env.pop("REPRO_SERVICE_FAULT", None)
    child = subprocess.run(
        child_args, env=env, capture_output=True, text=True, timeout=180
    )
    expected_exit = CRASH_EXIT_CODE if fault else 0
    if child.returncode != expected_exit:
        raise ChaosFailure(
            f"{name}: child exited {child.returncode}, expected {expected_exit}\n"
            f"stdout: {child.stdout}\nstderr: {child.stderr}"
        )
    acked = sum(1 for line in child.stdout.splitlines() if line.startswith("acked "))

    if torn:
        tear_log_tail(wal_dir)

    store = CollectionStore(snapshot_dir=snapshot_dir, wal_dir=wal_dir)
    summary = store.recover()
    collection = store.get(COLLECTION)
    if collection is None:
        raise ChaosFailure(f"{name}: collection missing after recovery")

    profiles = collection.index.num_profiles
    if profiles % BATCH_SIZE != 0:
        raise ChaosFailure(
            f"{name}: recovered {profiles} profiles — not a whole number of "
            f"batches of {BATCH_SIZE} (torn batch applied?)"
        )
    applied_batches = profiles // BATCH_SIZE
    if applied_batches < acked:
        raise ChaosFailure(
            f"{name}: child acked {acked} batches but only {applied_batches} "
            f"survived recovery — an acked batch was lost"
        )
    if torn and summary["torn_truncations"] != 1:
        raise ChaosFailure(
            f"{name}: expected 1 torn-tail truncation, "
            f"got {summary['torn_truncations']}"
        )

    recovered = state_fingerprint(collection)
    twin = build_twin(applied_batches)
    try:
        expected = state_fingerprint(twin)
    finally:
        twin.close()
    if recovered != expected:
        diverged = sorted(k for k in recovered if recovered[k] != expected[k])
        raise ChaosFailure(
            f"{name}: recovered state diverges from the uncrashed twin "
            f"on {diverged}"
        )
    store.close_all()

    # Replay idempotence: a second recovery from the same disk state must
    # land on the same fingerprint.
    second = CollectionStore(snapshot_dir=snapshot_dir, wal_dir=wal_dir)
    second.recover()
    again = state_fingerprint(second.get(COLLECTION))
    second.close_all()
    if again != recovered:
        raise ChaosFailure(f"{name}: double recovery is not idempotent")

    leaked = [
        entry for entry in os.listdir(wal_dir) if not entry.endswith(".wal")
    ]
    if leaked or tmpfiles.live_artifacts():
        raise ChaosFailure(
            f"{name}: leaked artifacts {leaked or tmpfiles.live_artifacts()}"
        )
    if own_dir is not None:
        import shutil

        shutil.rmtree(own_dir, ignore_errors=True)
    return {
        "scenario": name,
        "fault": fault,
        "acked_batches": acked,
        "applied_batches": applied_batches,
        "replayed": summary["replayed"].get(COLLECTION, 0),
        "torn_truncations": summary["torn_truncations"],
        "swept": len(summary["swept"]),
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--wal-dir", help=argparse.SUPPRESS)
    parser.add_argument("--snapshot-dir", help=argparse.SUPPRESS)
    parser.add_argument("--query", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument(
        "-s", "--scenario", action="append", choices=sorted(SCENARIOS),
        help="run only the named scenario(s); default: the full matrix",
    )
    args = parser.parse_args(argv)
    if args.child:
        run_child(args.wal_dir, args.snapshot_dir, query=args.query)
        return 0
    failures = 0
    for name in args.scenario or sorted(SCENARIOS):
        try:
            outcome = run_scenario(name)
        except ChaosFailure as failure:
            failures += 1
            print(f"FAIL {name}: {failure}")
        else:
            print(
                "ok {scenario}: fault={fault} acked={acked_batches} "
                "applied={applied_batches} replayed={replayed} "
                "torn={torn_truncations} swept={swept}".format(**outcome)
            )
    if failures:
        print(f"{failures} chaos scenario(s) failed")
        return 1
    print("service chaos matrix passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
