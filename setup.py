"""Setuptools entry point (kept for legacy editable installs without the wheel package)."""
from setuptools import setup

setup()
